"""The assembled P2P system: peers + overlay + underlay + event engine.

:class:`P2PNetwork` is the object protocols operate on.  It owns

- the :class:`~repro.sim.engine.Simulator` (virtual time),
- the :class:`~repro.net.underlay.Underlay` (latencies, locIds),
- the :class:`~repro.overlay.graph.OverlayGraph` (who is linked to whom),
- the :class:`~repro.overlay.peer.Peer` population, and
- message delivery: :meth:`send` schedules a handler invocation on the
  destination peer after the underlay latency of the link, and counts
  the message (per query when a ``query_id`` is given — the paper's
  search-traffic metric is "total number of messages produced by a
  query", §5.2).

Messages to dead peers are delivered nowhere but still count as sent —
bandwidth is consumed regardless of whether the destination is up.
"""

from __future__ import annotations

from collections.abc import Callable

from ..files.catalog import FileCatalog
from ..net.underlay import Underlay
from ..sim.config import SimulationConfig
from ..sim.engine import Simulator
from ..sim.metrics import MetricRegistry
from ..sim.rng import RandomStreams
from ..sim.tracing import NullTracer, Tracer
from .graph import OverlayGraph
from .peer import LivenessTable, Peer

__all__ = ["P2PNetwork"]


class P2PNetwork:
    """Everything a protocol needs to run one simulated system."""

    def __init__(
        self,
        config: SimulationConfig,
        sim: Simulator,
        underlay: Underlay,
        graph: OverlayGraph,
        peers: list[Peer],
        catalog: FileCatalog,
        streams: RandomStreams,
        metrics: MetricRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config
        self.sim = sim
        self.underlay = underlay
        self.graph = graph
        self.peers = peers
        self.catalog = catalog
        self.streams = streams
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        self._per_query_messages: dict[int, int] = {}
        # Struct-of-arrays liveness: the delivery check and the alive
        # census read flat flags instead of walking Peer objects.
        self.liveness = LivenessTable(len(peers))
        for peer in peers:
            peer.bind_liveness(self.liveness)
        self._alive_flags = self.liveness.flags
        # Hot counters, resolved once instead of a registry dict lookup
        # per message.
        self._total_counter = self.metrics.counter("messages.total")
        self._kind_counters = {
            "message": self.metrics.counter("messages.message"),
        }

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        config: SimulationConfig,
        tracer: Tracer | None = None,
    ) -> P2PNetwork:
        """Assemble the paper's system from a configuration.

        Deterministic for a given ``config.seed``: topology, landmark
        ids, group ids, catalog, and initial shares each draw from
        their own named stream.

        Implemented as build + instantiate on a single-use
        :class:`~repro.overlay.blueprint.NetworkBlueprint`; callers
        that run the same topology repeatedly should hold the
        blueprint and instantiate it per run instead.
        """
        from .blueprint import NetworkBlueprint

        return NetworkBlueprint.build(config).instantiate(tracer=tracer)

    # -- peer access -----------------------------------------------------

    def peer(self, peer_id: int) -> Peer:
        """The peer with the given id."""
        return self.peers[peer_id]

    def alive_peer_ids(self) -> list[int]:
        """Ids of every currently-alive peer (ascending)."""
        return self.liveness.alive_ids()

    # -- messaging ---------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        handler: Callable[[int, object], None],
        payload: object,
        query_id: int | None = None,
        kind: str = "message",
    ) -> None:
        """Ship ``payload`` from ``src`` to ``dst`` over the underlay.

        ``handler(dst, payload)`` runs after the link's one-way latency
        if the destination is alive at arrival time.  The message is
        counted immediately (``kind`` counter, plus the per-query tally
        when ``query_id`` is given).
        """
        kind_counter = self._kind_counters.get(kind)
        if kind_counter is None:
            kind_counter = self._kind_counters[kind] = self.metrics.counter(
                f"messages.{kind}"
            )
        kind_counter.increment()
        self._total_counter.increment()
        if query_id is not None:
            self._per_query_messages[query_id] = (
                self._per_query_messages.get(query_id, 0) + 1
            )
        delay = self.underlay.latency_s(src, dst)
        self.sim.schedule(delay, self._deliver, dst, handler, payload)

    def _deliver(
        self, dst: int, handler: Callable[[int, object], None], payload: object
    ) -> None:
        if not self._alive_flags[dst]:
            self.metrics.counter("messages.dropped_dead_peer").increment()
            return
        handler(dst, payload)

    def query_message_count(self, query_id: int) -> int:
        """Messages attributed to ``query_id`` so far (§5.2 metric)."""
        return self._per_query_messages.get(query_id, 0)

    def charge_query_messages(self, query_id: int, count: int) -> None:
        """Attribute ``count`` extra messages to a query's traffic tally."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._per_query_messages[query_id] = (
            self._per_query_messages.get(query_id, 0) + count
        )

    def forget_query_messages(self, query_id: int) -> int:
        """Pop and return the final message tally of a finished query."""
        return self._per_query_messages.pop(query_id, 0)

    # -- probes ------------------------------------------------------------

    def rtt_probe_ms(
        self, src: int, candidates: list[int], query_id: int | None = None
    ) -> dict[int, float]:
        """Measure RTT from ``src`` to each candidate (§5.1 adjustment:
        requestors probe advertised providers when no locId matches).

        Each probe costs one request + one reply message, charged to
        ``query_id``'s tally when given.
        """
        results: dict[int, float] = {}
        for dst in candidates:
            self.metrics.counter("messages.rtt_probe").increment(2)
            self.metrics.counter("messages.total").increment(2)
            if query_id is not None:
                self.charge_query_messages(query_id, 2)
            results[dst] = self.underlay.rtt_ms(src, dst)
        return results
