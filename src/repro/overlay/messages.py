"""Protocol messages exchanged over the overlay.

Three message families, straight from §3.1 and §4 of the paper:

- :class:`Query` — a keyword query flooded/forwarded with a TTL; it
  carries its traversal path so responses can walk the reverse path.
- :class:`QueryResponse` — filename + provider information travelling
  back along the reverse path.  In Locaware each response carries
  *several* :class:`ProviderEntry` items (provider address + locId) and
  the requestor's identity, which intermediate peers may cache.
- :class:`BloomUpdate` — a §4.2 delta update of a peer's keyword
  filter, pushed to direct neighbors.

Messages are immutable; forwarding creates the next hop's copy via
:meth:`Query.forwarded`.  Query ids are globally unique within a run
and allocated by the protocol engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bloom.delta import BloomDelta

__all__ = ["ProviderEntry", "Query", "QueryResponse", "BloomUpdate"]


@dataclass(frozen=True)
class ProviderEntry:
    """One known provider of a file: its address and its locality id.

    ``peer_id`` stands in for the IP address of the paper's index
    entries; ``locid`` is the §4.1.1 landmark-ordering id (``None`` for
    protocols that are not location-aware).
    """

    peer_id: int
    locid: int | None = None


@dataclass(frozen=True)
class Query:
    """A keyword query in flight.

    Attributes
    ----------
    query_id:
        Unique id; also keys per-peer duplicate suppression.
    origin:
        The requesting peer (where responses must return).
    origin_locid:
        The requestor's locId, carried so that answering peers can pick
        location-matching providers (§4.1.2).
    keywords:
        The query keywords (1–3 keywords of the target filename, §5.1).
    target_file:
        Ground-truth id of the file the workload generator sampled.
        Used for metrics only — routing and matching never read it.
    ttl:
        Remaining hops (decremented on forward, §3.1).
    path:
        Peers traversed so far, origin first.  Responses walk it in
        reverse.
    """

    query_id: int
    origin: int
    origin_locid: int
    keywords: tuple[str, ...]
    target_file: int
    ttl: int
    path: tuple[int, ...]

    def forwarded(self, via: int) -> Query:
        """The copy of this query that ``via`` forwards onward.

        Built directly rather than via ``dataclasses.replace`` — this
        runs once per hop and ``replace`` costs a fields() walk plus a
        kwargs dict on every call.
        """
        return Query(
            self.query_id,
            self.origin,
            self.origin_locid,
            self.keywords,
            self.target_file,
            self.ttl - 1,
            self.path + (via,),
        )

    @property
    def last_hop(self) -> int:
        """The peer that sent this copy (the origin for the first hop)."""
        return self.path[-1]


@dataclass(frozen=True)
class QueryResponse:
    """A query response walking the reverse path (§3.1).

    Attributes
    ----------
    query_id / origin / origin_locid / keywords:
        Copied from the query (the requestor's identity and locality
        travel with the response so that caching peers can register the
        requestor as a future provider, §4.1.2).
    file_id / filename:
        The satisfying file.
    providers:
        Known providers.  Single entry for Flooding/Dicas; up to
        ``max_providers_per_file`` entries for Locaware.
    responder:
        The peer that generated the response (file-store or index hit).
    reverse_path:
        Peers still to visit, ending with the origin.
    """

    query_id: int
    origin: int
    origin_locid: int
    keywords: tuple[str, ...]
    file_id: int
    filename: str
    providers: tuple[ProviderEntry, ...]
    responder: int
    reverse_path: tuple[int, ...]

    def next_hop(self) -> int | None:
        """The next peer on the reverse path, or ``None`` if delivered."""
        return self.reverse_path[0] if self.reverse_path else None

    def advanced(self) -> QueryResponse:
        """The copy of this response after one reverse-path hop."""
        return QueryResponse(
            self.query_id,
            self.origin,
            self.origin_locid,
            self.keywords,
            self.file_id,
            self.filename,
            self.providers,
            self.responder,
            self.reverse_path[1:],
        )


@dataclass(frozen=True)
class BloomUpdate:
    """A §4.2 Bloom-filter update pushed to a direct neighbor."""

    sender: int
    delta: BloomDelta
