"""Session-based churn: peers leave and rejoin (§3.1).

"Participant peers are highly dynamic and autonomous, failing or
leaving the network at any moment."  The headline experiments of the
paper run without parameterised churn, but staleness of cached indexes
is the motivation for Locaware's recency-based replacement (§4.1.2), so
the reproduction ships a churn process for ablation A5.

Model: each peer alternates exponential up-sessions (mean
``mean_session_s``) and down-times (mean ``mean_downtime_s``).  On
departure the peer's overlay links are torn down and its soft state
(duplicate caches, protocol caches, Bloom filters) is discarded; its
*shared files stay on disk* and come back when it rejoins with fresh
random links — the natural-replication state survives churn, the index
state does not.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from .network import P2PNetwork

__all__ = ["ChurnProcess"]


class ChurnProcess:
    """Drives leave/rejoin events for every peer of a network."""

    def __init__(
        self,
        network: P2PNetwork,
        mean_session_s: float,
        mean_downtime_s: float,
        rng: random.Random,
        on_leave: Callable[[int], None] | None = None,
        on_rejoin: Callable[[int], None] | None = None,
    ) -> None:
        if mean_session_s <= 0 or mean_downtime_s <= 0:
            raise ValueError("session and downtime means must be positive")
        self._network = network
        self._mean_session = mean_session_s
        self._mean_downtime = mean_downtime_s
        self._rng = rng
        self._on_leave = on_leave
        self._on_rejoin = on_rejoin
        self.departures = 0
        self.rejoins = 0
        self._leave_counter = network.metrics.counter("churn.leaves")
        self._rejoin_counter = network.metrics.counter("churn.rejoins")

    @property
    def mean_session_s(self) -> float:
        """Current mean up-time used for future departure timers."""
        return self._mean_session

    @property
    def mean_downtime_s(self) -> float:
        """Current mean off-time used for future rejoin timers."""
        return self._mean_downtime

    def set_means(self, mean_session_s: float, mean_downtime_s: float) -> None:
        """Change the session/downtime means for *future* timers.

        Timers already armed keep their original delays; only
        departures/rejoins scheduled after this call see the new means.
        Used by scenario hooks (e.g. a churn storm collapsing session
        times mid-run and later restoring them).
        """
        if mean_session_s <= 0 or mean_downtime_s <= 0:
            raise ValueError("session and downtime means must be positive")
        self._mean_session = mean_session_s
        self._mean_downtime = mean_downtime_s

    def start(self) -> None:
        """Arm the first departure timer of every peer."""
        for peer in self._network.peers:
            self._schedule_departure(peer.peer_id)

    def _schedule_departure(self, peer_id: int) -> None:
        delay = self._rng.expovariate(1.0 / self._mean_session)
        self._network.sim.schedule(delay, self._leave, peer_id)

    def _schedule_rejoin(self, peer_id: int) -> None:
        delay = self._rng.expovariate(1.0 / self._mean_downtime)
        self._network.sim.schedule(delay, self._rejoin, peer_id)

    def _leave(self, peer_id: int) -> None:
        peer = self._network.peer(peer_id)
        if not peer.alive:
            return
        peer.alive = False
        self.departures += 1
        if self._network.graph.contains(peer_id):
            self._network.graph.remove_peer(peer_id)
        peer.reset_session_state()
        self._leave_counter.increment()
        if self._on_leave is not None:
            self._on_leave(peer_id)
        tracer = self._network.tracer
        if tracer.enabled:
            tracer.emit(self._network.sim.now, "churn.leave", peer=peer_id)
        self._schedule_rejoin(peer_id)

    def _rejoin(self, peer_id: int) -> None:
        peer = self._network.peer(peer_id)
        if peer.alive:
            return
        peer.alive = True
        self.rejoins += 1
        links = max(1, round(self._network.config.mean_degree))
        self._network.graph.add_peer(peer_id, links, self._rng)
        self._rejoin_counter.increment()
        if self._on_rejoin is not None:
            self._on_rejoin(peer_id)
        tracer = self._network.tracer
        if tracer.enabled:
            tracer.emit(self._network.sim.now, "churn.rejoin", peer=peer_id)
        self._schedule_departure(peer_id)
