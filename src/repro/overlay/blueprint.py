"""Blueprint/instance split: build the immutable world once, run it many times.

Every ``run_protocol`` call used to rebuild the complete immutable
world — underlay latencies, overlay wiring, file catalog, initial
shares — even though the same seed deterministically yields the same
topology.  :class:`NetworkBlueprint` captures that world exactly once:

- :meth:`NetworkBlueprint.build` performs the expensive construction
  (it consumes precisely the build-time RNG streams,
  :data:`~repro.sim.config.BUILD_STREAM_NAMES`);
- :meth:`NetworkBlueprint.instantiate` stamps out a fresh
  :class:`~repro.overlay.network.P2PNetwork` — new simulator, fresh
  peers and file stores, a fresh run-time-only stream factory — in a
  fraction of the build cost.

The split is safe because the world has two sharply different halves:

- **shared, immutable**: the :class:`~repro.net.underlay.Underlay`
  (positions, latencies, locIds) and the
  :class:`~repro.files.catalog.FileCatalog` are never mutated after
  construction, so every instance aliases the blueprint's objects;
- **copied or rebuilt per instance**: the overlay graph (churn rewires
  it), the peer population (stores grow with downloads, liveness and
  protocol state change), the simulator, metrics, and every run-time
  RNG stream.

Because :class:`~repro.sim.rng.RandomStreams` seeds each named stream
independently from ``(master_seed, name)``, a fresh factory that never
draws the build streams produces byte-identical run-time streams — so
an instantiated run is indistinguishable from a from-scratch build
(``tests/test_determinism.py`` locks this in, serial and parallel).

Blueprint reuse across *configurations* is governed by
:meth:`~repro.sim.config.SimulationConfig.topology_fingerprint`: any
config whose topology-affecting fields match the blueprint's may be
instantiated on it, with run-time fields (query rates, TTL, cache
sizes, churn) varying freely.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass

from ..files.catalog import FileCatalog
from ..files.keywords import KeywordPool
from ..files.storage import FileStore
from ..net.underlay import Underlay
from ..sim.config import BUILD_STREAM_NAMES, SimulationConfig
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..sim.tracing import Tracer
from .graph import OverlayGraph
from .network import P2PNetwork
from .peer import Peer

__all__ = ["BlueprintCache", "NetworkBlueprint", "build_count"]

#: Module-wide tally of topology builds, for benchmarks and tests that
#: must prove a code path built the world exactly N times.
_build_count = 0


def build_count() -> int:
    """How many :meth:`NetworkBlueprint.build` calls this process has run."""
    return _build_count


@dataclass(frozen=True)
class NetworkBlueprint:
    """The immutable world of one simulated system, ready to instantiate."""

    config: SimulationConfig
    """The configuration the world was built from."""

    underlay: Underlay
    """Physical positions, latencies, locIds (immutable; shared)."""

    graph: OverlayGraph
    """Pristine overlay wiring (copied per instance; churn mutates it)."""

    catalog: FileCatalog
    """The global file pool (immutable; shared)."""

    gids: tuple[int, ...]
    """Per-peer Dicas group ids, indexed by peer id."""

    initial_shares: tuple[tuple[int, ...], ...]
    """Per-peer initial file endowments, indexed by peer id."""

    fingerprint: str
    """``config.topology_fingerprint()`` at build time (the cache key)."""

    @classmethod
    def build(cls, config: SimulationConfig) -> NetworkBlueprint:
        """Construct the paper's immutable world from a configuration.

        Deterministic for a given ``config.seed``: underlay, overlay
        wiring, catalog, group ids, and initial shares each draw from
        their own named build-time stream.
        """
        global _build_count
        _build_count += 1
        streams = RandomStreams(config.seed)
        if config.latency_model == "router":
            from ..net.latency import RouterLevelLatencyModel

            model = RouterLevelLatencyModel(
                streams.stream("router-topology"),
                min_latency_ms=config.min_latency_ms,
                max_latency_ms=config.max_latency_ms,
            )
        else:
            model = None  # Underlay.build defaults to the Euclidean model
        underlay = Underlay.build(
            config.num_peers,
            streams.stream("underlay"),
            min_latency_ms=config.min_latency_ms,
            max_latency_ms=config.max_latency_ms,
            num_landmarks=config.num_landmarks,
            clustered=(config.peer_placement == "clustered"),
            model=model,
        )
        graph = OverlayGraph.random(
            config.num_peers, config.mean_degree, streams.stream("overlay")
        )
        pool = KeywordPool(config.keyword_pool_size)
        catalog = FileCatalog.generate(
            config.num_files,
            config.keywords_per_file,
            pool,
            streams.stream("catalog"),
        )
        gid_rng = streams.stream("gids")
        share_rng = streams.stream("shares")
        gids = []
        initial_shares = []
        for _pid in range(config.num_peers):
            initial_shares.append(
                tuple(share_rng.sample(range(config.num_files), config.files_per_peer))
            )
            gids.append(gid_rng.randrange(config.group_count))
        return cls(
            config=config,
            underlay=underlay,
            graph=graph,
            catalog=catalog,
            gids=tuple(gids),
            initial_shares=tuple(initial_shares),
            fingerprint=config.topology_fingerprint(),
        )

    def compatible_with(self, config: SimulationConfig) -> bool:
        """Whether ``config`` may be instantiated on this blueprint."""
        return config.topology_fingerprint() == self.fingerprint

    def instantiate(
        self,
        config: SimulationConfig | None = None,
        tracer: Tracer | None = None,
    ) -> P2PNetwork:
        """Stamp out a fresh, independent :class:`P2PNetwork`.

        ``config`` may override the blueprint's configuration as long
        as every topology field matches (same fingerprint); this is how
        a scenario that only touches run-time knobs (churn means, query
        rates) runs on a cached build.  The returned network has its
        own simulator, metrics, peers, file stores, overlay copy, and a
        run-time-only stream factory — nothing run-mutable is shared
        with other instances.
        """
        cfg = self.config if config is None else config
        if cfg is not self.config and not self.compatible_with(cfg):
            raise ValueError(
                "config is topology-incompatible with this blueprint "
                f"(fingerprint {cfg.topology_fingerprint()[:12]}... != "
                f"{self.fingerprint[:12]}...); rebuild instead of instantiating"
            )
        streams = RandomStreams(cfg.seed, forbidden=BUILD_STREAM_NAMES)
        peers = []
        for pid in range(cfg.num_peers):
            store = FileStore(self.catalog)
            store.add_many(self.initial_shares[pid])
            peers.append(
                Peer(
                    peer_id=pid,
                    locid=self.underlay.locid_of(pid),
                    gid=self.gids[pid],
                    store=store,
                )
            )
        return P2PNetwork(
            config=cfg,
            sim=Simulator(),
            underlay=self.underlay,
            graph=self.graph.copy(),
            peers=peers,
            catalog=self.catalog,
            streams=streams,
            tracer=tracer,
        )


class BlueprintCache:
    """A per-process LRU of built blueprints, keyed by topology fingerprint.

    One instance lives at module level in :mod:`repro.experiments.grid`
    so that ``fork``-started worker processes inherit the parent's
    built worlds copy-on-write: :meth:`prewarm` builds every distinct
    fingerprint of an upcoming batch *in the parent*, the pool forks,
    and each worker's :meth:`get` is a pure cache hit — the immutable
    underlay/catalog ship to workers exactly once, at fork time,
    instead of being rebuilt (or pickled) per task.

    ``capacity`` bounds ordinary :meth:`get` churn; :meth:`prewarm`
    grows it transiently so a prewarmed world is never evicted
    mid-sweep, and :meth:`clear` restores the default.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._default_capacity = capacity
        self.capacity = capacity
        self._blueprints: OrderedDict[str, NetworkBlueprint] = OrderedDict()

    def get(self, config: SimulationConfig) -> NetworkBlueprint:
        """The blueprint for ``config``, built at most once per process."""
        fingerprint = config.topology_fingerprint()
        blueprint = self._blueprints.get(fingerprint)
        if blueprint is None:
            blueprint = NetworkBlueprint.build(config)
            self._blueprints[fingerprint] = blueprint
            while len(self._blueprints) > self.capacity:
                self._blueprints.popitem(last=False)
        else:
            self._blueprints.move_to_end(fingerprint)
        return blueprint

    def prewarm(self, configs: Iterable[SimulationConfig]) -> int:
        """Build every distinct topology among ``configs``; count builds.

        Deduplicates by fingerprint first, grows :attr:`capacity` to
        hold them all, then builds only the missing worlds — exactly
        one :meth:`NetworkBlueprint.build` per distinct fingerprint
        not already cached.
        """
        distinct: OrderedDict[str, SimulationConfig] = OrderedDict()
        for config in configs:
            distinct.setdefault(config.topology_fingerprint(), config)
        self.capacity = max(self.capacity, len(distinct))
        # Touch the already-cached members first so the inserts below
        # can only evict worlds *outside* this batch — every prewarmed
        # fingerprint must still be cached when the pool forks.
        for fingerprint in distinct:
            if fingerprint in self._blueprints:
                self._blueprints.move_to_end(fingerprint)
        built = 0
        for fingerprint, config in distinct.items():
            if fingerprint not in self._blueprints:
                self.get(config)
                built += 1
        return built

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._blueprints

    def __len__(self) -> int:
        return len(self._blueprints)

    def restore_capacity(self) -> None:
        """Shrink back to the default capacity, evicting LRU overflow.

        The counterpart of :meth:`prewarm`'s transient growth: pool
        owners call this when their workers are gone, so a long-lived
        parent process never retains more worlds than the ordinary
        LRU bound.
        """
        self.capacity = self._default_capacity
        while len(self._blueprints) > self.capacity:
            self._blueprints.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached blueprint and restore the default capacity."""
        self._blueprints.clear()
        self.capacity = self._default_capacity
