"""Unstructured overlay graph construction and maintenance.

§3.1 of the paper: "each peer joins the network by establishing logical
links to randomly chosen peers ... the neighborhood of a peer is set
without knowledge of the underlying topology".  We reproduce that with
an Erdős–Rényi-style random graph targeting the paper's mean degree
(3), then patch connectivity: every component is linked into the giant
component with one random edge, so queries are not artificially
partitioned away from their results (PeerSim's wiring protocols do the
same).

The graph is mutable — churn adds and removes peers at runtime — and
maintains degree bookkeeping so protocols can ask for the
"highly connected neighbor" fallback of §4.2 in O(neighbors).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

__all__ = ["OverlayGraph"]


class OverlayGraph:
    """An undirected overlay graph over integer peer ids."""

    def __init__(self, num_peers: int) -> None:
        if num_peers < 0:
            raise ValueError(f"num_peers must be non-negative, got {num_peers}")
        self._adjacency: Dict[int, Set[int]] = {pid: set() for pid in range(num_peers)}

    # -- construction ----------------------------------------------------

    @classmethod
    def random(
        cls,
        num_peers: int,
        mean_degree: float,
        rng: random.Random,
        connect_components: bool = True,
    ) -> "OverlayGraph":
        """Build the paper's random overlay with the target mean degree."""
        if num_peers < 2:
            raise ValueError(f"need at least 2 peers, got {num_peers}")
        if mean_degree <= 0 or mean_degree >= num_peers:
            raise ValueError(
                f"mean_degree must be in (0, num_peers), got {mean_degree}"
            )
        graph = cls(num_peers)
        # G(n, M) variant: exactly round(n * d / 2) distinct edges, which
        # pins the realised mean degree to the target.
        target_edges = round(num_peers * mean_degree / 2.0)
        max_edges = num_peers * (num_peers - 1) // 2
        target_edges = min(target_edges, max_edges)
        added = 0
        while added < target_edges:
            a = rng.randrange(num_peers)
            b = rng.randrange(num_peers)
            if a == b or b in graph._adjacency[a]:
                continue
            graph._add_edge(a, b)
            added += 1
        if connect_components:
            graph._connect_components(rng)
        return graph

    def copy(self) -> "OverlayGraph":
        """An independent deep copy of the current wiring.

        The overlay is mutated at run time (churn tears down and
        rebuilds links), so a cached blueprint hands every
        instantiation its own copy of the pristine graph.
        """
        clone = OverlayGraph(0)
        clone._adjacency = {pid: set(links) for pid, links in self._adjacency.items()}
        return clone

    def _add_edge(self, a: int, b: int) -> None:
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    def _connect_components(self, rng: random.Random) -> None:
        components = self.components()
        if len(components) <= 1:
            return
        components.sort(key=len, reverse=True)
        giant = components[0]
        giant_list = sorted(giant)
        for component in components[1:]:
            a = rng.choice(sorted(component))
            b = rng.choice(giant_list)
            self._add_edge(a, b)

    # -- queries -----------------------------------------------------------

    @property
    def num_peers(self) -> int:
        """Number of peers currently in the graph."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(n) for n in self._adjacency.values()) // 2

    def peers(self) -> List[int]:
        """All peer ids, sorted."""
        return sorted(self._adjacency)

    def contains(self, peer_id: int) -> bool:
        """Whether ``peer_id`` is currently in the graph."""
        return peer_id in self._adjacency

    def neighbors(self, peer_id: int) -> Set[int]:
        """A copy of ``peer_id``'s neighbor set."""
        return set(self._adjacency[peer_id])

    def neighbors_view(self, peer_id: int) -> Set[int]:
        """The *live* neighbor set (do not mutate); avoids copies on hot paths."""
        return self._adjacency[peer_id]

    def degree(self, peer_id: int) -> int:
        """Number of neighbors of ``peer_id``."""
        return len(self._adjacency[peer_id])

    def mean_degree(self) -> float:
        """Realised average degree."""
        if not self._adjacency:
            return 0.0
        return 2.0 * self.num_edges / len(self._adjacency)

    def highest_degree_neighbor(self, peer_id: int) -> Optional[int]:
        """The §4.2 'highly connected neighbor' fallback target.

        Ties break towards the smallest id for determinism.  ``None``
        when the peer has no neighbors.
        """
        best: Optional[int] = None
        best_degree = -1
        for neighbor in sorted(self._adjacency[peer_id]):
            d = len(self._adjacency[neighbor])
            if d > best_degree:
                best = neighbor
                best_degree = d
        return best

    def components(self) -> List[Set[int]]:
        """Connected components as peer-id sets."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in self._adjacency:
            if start in seen:
                continue
            stack = [start]
            component = {start}
            seen.add(start)
            while stack:
                u = stack.pop()
                for v in self._adjacency[u]:
                    if v not in component:
                        component.add(v)
                        seen.add(v)
                        stack.append(v)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Whether the graph forms a single component."""
        return len(self.components()) <= 1

    # -- mutation (churn) ----------------------------------------------------

    def add_peer(self, peer_id: int, num_links: int, rng: random.Random) -> List[int]:
        """(Re)join ``peer_id`` with ``num_links`` random neighbors (§3.1).

        Returns the chosen neighbor ids.  Joining an existing id is an
        error; pick ids with :meth:`contains` first.
        """
        if peer_id in self._adjacency:
            raise ValueError(f"peer {peer_id} already in the overlay")
        candidates = sorted(self._adjacency)
        self._adjacency[peer_id] = set()
        if not candidates:
            return []
        chosen = rng.sample(candidates, min(num_links, len(candidates)))
        for neighbor in chosen:
            self._add_edge(peer_id, neighbor)
        return chosen

    def remove_peer(self, peer_id: int) -> Set[int]:
        """Remove ``peer_id`` and its links; returns its former neighbors."""
        neighbors = self._adjacency.pop(peer_id, None)
        if neighbors is None:
            raise KeyError(f"peer {peer_id} not in the overlay")
        for neighbor in neighbors:
            self._adjacency[neighbor].discard(peer_id)
        return neighbors

    def degree_histogram(self) -> Dict[int, int]:
        """Map degree -> number of peers with that degree."""
        histogram: Dict[int, int] = {}
        for neighbors in self._adjacency.values():
            d = len(neighbors)
            histogram[d] = histogram.get(d, 0) + 1
        return histogram
