"""Unstructured overlay graph construction and maintenance.

§3.1 of the paper: "each peer joins the network by establishing logical
links to randomly chosen peers ... the neighborhood of a peer is set
without knowledge of the underlying topology".  We reproduce that with
an Erdős–Rényi-style random graph targeting the paper's mean degree
(3), then patch connectivity: every component is linked into the giant
component with one random edge, so queries are not artificially
partitioned away from their results (PeerSim's wiring protocols do the
same).

Two interchangeable representations implement one explicit contract:

- :class:`OverlayGraph` (the default) keeps the pristine wiring in a
  CSR-style pair of flat int arrays (``indptr``/``indices``) with a
  copy-on-write per-row overlay for churn mutations.  Neighbor reads on
  the per-message hot path are O(degree) array slices with no object
  chasing, ``copy()`` (one per blueprint instantiation) is a pair of
  C-level ``memcpy``s, and re-joins draw candidates from an
  incrementally maintained sorted id list instead of re-sorting the
  whole population (the old ``sorted(adjacency)`` was O(n log n) per
  join).

- :class:`DictOverlayGraph` is the dict-backed reference
  implementation retained for the substrate-equivalence suite
  (``tests/test_substrate_equivalence.py``): same construction RNG
  draws, same mutation semantics, byte-identical neighbor orders.

**Neighbor iteration order is part of the contract**: rows iterate in
edge *insertion* order (construction order; churn re-joins append).
Both backends guarantee it, which is what makes runs on either backend
byte-identical — the previous ``Set[int]`` rows iterated in hash-table
order, an implementation accident no representation can reproduce.
"""

from __future__ import annotations

import random
from array import array
from bisect import bisect_left, insort
from collections.abc import Sequence

__all__ = ["OverlayGraph", "DictOverlayGraph"]


def _random_rows(
    num_peers: int,
    mean_degree: float,
    rng: random.Random,
    connect_components: bool,
) -> list[list[int]]:
    """Shared G(n, M) construction: insertion-ordered adjacency rows.

    Both graph backends build from this helper so they consume the RNG
    identically and freeze identical rows.
    """
    if num_peers < 2:
        raise ValueError(f"need at least 2 peers, got {num_peers}")
    if mean_degree <= 0 or mean_degree >= num_peers:
        raise ValueError(
            f"mean_degree must be in (0, num_peers), got {mean_degree}"
        )
    # G(n, M) variant: exactly round(n * d / 2) distinct edges, which
    # pins the realised mean degree to the target.
    target_edges = round(num_peers * mean_degree / 2.0)
    max_edges = num_peers * (num_peers - 1) // 2
    target_edges = min(target_edges, max_edges)
    rows: list[list[int]] = [[] for _ in range(num_peers)]
    membership: list[set[int]] = [set() for _ in range(num_peers)]

    def add_edge(a: int, b: int) -> None:
        rows[a].append(b)
        rows[b].append(a)
        membership[a].add(b)
        membership[b].add(a)

    if 2 * target_edges > max_edges:
        # Dense regime: the rejection loop's accept probability tends
        # to zero as target_edges approaches max_edges (near-livelock
        # at mean_degree ≈ num_peers - 1), so sample the edge set
        # directly from the space of all possible edges instead.
        all_pairs = [
            (a, b) for a in range(num_peers) for b in range(a + 1, num_peers)
        ]
        for a, b in rng.sample(all_pairs, target_edges):
            add_edge(a, b)
    else:
        added = 0
        while added < target_edges:
            a = rng.randrange(num_peers)
            b = rng.randrange(num_peers)
            if a == b or b in membership[a]:
                continue
            add_edge(a, b)
            added += 1
    if connect_components:
        _connect_rows(rows, membership, rng)
    return rows


def _connect_rows(
    rows: list[list[int]], membership: list[set[int]], rng: random.Random
) -> None:
    """Link every component into the giant one with one random edge."""
    components = _components_of_rows(rows)
    if len(components) <= 1:
        return
    components.sort(key=len, reverse=True)
    giant_list = sorted(components[0])
    for component in components[1:]:
        a = rng.choice(sorted(component))
        b = rng.choice(giant_list)
        rows[a].append(b)
        rows[b].append(a)
        membership[a].add(b)
        membership[b].add(a)


def _components_of_rows(rows: list[list[int]]) -> list[set[int]]:
    seen: set[int] = set()
    components: list[set[int]] = []
    for start in range(len(rows)):
        if start in seen:
            continue
        stack = [start]
        component = {start}
        seen.add(start)
        while stack:
            u = stack.pop()
            for v in rows[u]:
                if v not in component:
                    component.add(v)
                    seen.add(v)
                    stack.append(v)
        components.append(component)
    return components


class OverlayGraph:
    """An undirected overlay graph over integer peer ids (CSR-backed).

    The pristine wiring lives in two flat int arrays (``_indptr``,
    ``_indices``); churn promotes individual rows into ``_mutated``
    copy-on-write arrays.  Neighbor rows iterate in insertion order.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_mutated",
        "_present",
        "_present_sorted",
        "_num_present",
        "_num_edges",
    )

    #: array typecode for neighbor ids — signed 8-byte, plenty for 10⁹ peers.
    _TYPECODE = "q"

    def __init__(self, num_peers: int) -> None:
        if num_peers < 0:
            raise ValueError(f"num_peers must be non-negative, got {num_peers}")
        self._indptr = array(self._TYPECODE, bytes(8 * (num_peers + 1)))
        self._indices = array(self._TYPECODE)
        self._mutated: dict[int, array] = {}
        self._present = bytearray(b"\x01" * num_peers)
        self._present_sorted: list[int] | None = None
        self._num_present = num_peers
        self._num_edges = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def random(
        cls,
        num_peers: int,
        mean_degree: float,
        rng: random.Random,
        connect_components: bool = True,
    ) -> OverlayGraph:
        """Build the paper's random overlay with the target mean degree."""
        rows = _random_rows(num_peers, mean_degree, rng, connect_components)
        graph = cls(num_peers)
        graph._freeze_rows(rows)
        return graph

    def _freeze_rows(self, rows: Sequence[Sequence[int]]) -> None:
        """Load insertion-ordered rows into the CSR base arrays."""
        indptr = array(self._TYPECODE, [0] * (len(rows) + 1))
        indices = array(self._TYPECODE)
        total = 0
        for pid, row in enumerate(rows):
            indices.extend(row)
            total += len(row)
            indptr[pid + 1] = total
        self._indptr = indptr
        self._indices = indices
        self._num_edges = total // 2

    def copy(self) -> OverlayGraph:
        """An independent deep copy of the current wiring.

        The overlay is mutated at run time (churn tears down and
        rebuilds links), so a cached blueprint hands every
        instantiation its own copy of the pristine graph.  Copying the
        CSR base is two C-level array copies.
        """
        clone = OverlayGraph(0)
        clone._indptr = self._indptr[:]
        clone._indices = self._indices[:]
        clone._mutated = {pid: row[:] for pid, row in self._mutated.items()}
        clone._present = bytearray(self._present)
        clone._present_sorted = None
        clone._num_present = self._num_present
        clone._num_edges = self._num_edges
        return clone

    # -- row access -------------------------------------------------------

    def _base_row(self, peer_id: int) -> array:
        start = self._indptr[peer_id]
        return self._indices[start : self._indptr[peer_id + 1]]

    def _row_mut(self, peer_id: int) -> array:
        """The peer's mutable row, promoting the CSR base row on demand."""
        row = self._mutated.get(peer_id)
        if row is None:
            if not self.contains(peer_id):
                raise KeyError(f"peer {peer_id} not in the overlay")
            row = self._base_row(peer_id)
            self._mutated[peer_id] = row
        return row

    def _add_edge(self, a: int, b: int) -> None:
        row_a = self._row_mut(a)
        if b in row_a:
            return
        row_a.append(b)
        self._row_mut(b).append(a)
        self._num_edges += 1

    # -- queries -----------------------------------------------------------

    @property
    def num_peers(self) -> int:
        """Number of peers currently in the graph."""
        return self._num_present

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def peers(self) -> list[int]:
        """All peer ids, sorted."""
        return list(self._sorted_present())

    def _sorted_present(self) -> list[int]:
        """The (cached) ascending list of present peer ids.

        Maintained incrementally by :meth:`add_peer`/:meth:`remove_peer`
        so a churn re-join no longer re-sorts the whole population."""
        if self._present_sorted is None:
            present = self._present
            self._present_sorted = [i for i in range(len(present)) if present[i]]
        return self._present_sorted

    def contains(self, peer_id: int) -> bool:
        """Whether ``peer_id`` is currently in the graph."""
        return 0 <= peer_id < len(self._present) and bool(self._present[peer_id])

    def neighbors(self, peer_id: int) -> set[int]:
        """A copy of ``peer_id``'s neighbors as a set."""
        return set(self.neighbors_view(peer_id))

    def neighbors_view(self, peer_id: int) -> Sequence[int]:
        """The neighbor row in insertion order (do not mutate).

        The hot-path read: an O(degree) int-array slice, no per-entry
        object allocation."""
        row = self._mutated.get(peer_id)
        if row is not None:
            return row
        if not self.contains(peer_id):
            raise KeyError(f"peer {peer_id} not in the overlay")
        return self._base_row(peer_id)

    def degree(self, peer_id: int) -> int:
        """Number of neighbors of ``peer_id``."""
        row = self._mutated.get(peer_id)
        if row is not None:
            return len(row)
        if not self.contains(peer_id):
            raise KeyError(f"peer {peer_id} not in the overlay")
        return self._indptr[peer_id + 1] - self._indptr[peer_id]

    def mean_degree(self) -> float:
        """Realised average degree."""
        if not self._num_present:
            return 0.0
        return 2.0 * self._num_edges / self._num_present

    def highest_degree_neighbor(self, peer_id: int) -> int | None:
        """The §4.2 'highly connected neighbor' fallback target.

        Ties break towards the smallest id for determinism.  ``None``
        when the peer has no neighbors.
        """
        best: int | None = None
        best_degree = -1
        for neighbor in sorted(self.neighbors_view(peer_id)):
            d = self.degree(neighbor)
            if d > best_degree:
                best = neighbor
                best_degree = d
        return best

    def components(self) -> list[set[int]]:
        """Connected components as peer-id sets."""
        seen: set[int] = set()
        components: list[set[int]] = []
        for start in self._sorted_present():
            if start in seen:
                continue
            stack = [start]
            component = {start}
            seen.add(start)
            while stack:
                u = stack.pop()
                for v in self.neighbors_view(u):
                    if v not in component:
                        component.add(v)
                        seen.add(v)
                        stack.append(v)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Whether the graph forms a single component."""
        return len(self.components()) <= 1

    # -- mutation (churn) ----------------------------------------------------

    def add_peer(self, peer_id: int, num_links: int, rng: random.Random) -> list[int]:
        """(Re)join ``peer_id`` with ``num_links`` random neighbors (§3.1).

        Returns the chosen neighbor ids.  Joining an existing id is an
        error; pick ids with :meth:`contains` first.
        """
        if self.contains(peer_id):
            raise ValueError(f"peer {peer_id} already in the overlay")
        candidates = self._sorted_present()
        if peer_id >= len(self._present):
            self._present.extend(bytes(peer_id + 1 - len(self._present)))
        self._present[peer_id] = 1
        self._num_present += 1
        self._mutated[peer_id] = array(self._TYPECODE)
        if not candidates:
            self._present_sorted = None
            return []
        chosen = rng.sample(candidates, min(num_links, len(candidates)))
        insort(candidates, peer_id)  # after sampling: a peer never links itself
        for neighbor in chosen:
            self._add_edge(peer_id, neighbor)
        return chosen

    def remove_peer(self, peer_id: int) -> set[int]:
        """Remove ``peer_id`` and its links; returns its former neighbors."""
        if not self.contains(peer_id):
            raise KeyError(f"peer {peer_id} not in the overlay")
        row = self._mutated.pop(peer_id, None)
        if row is None:
            row = self._base_row(peer_id)
        for neighbor in row:
            self._row_mut(neighbor).remove(peer_id)
        self._present[peer_id] = 0
        self._num_present -= 1
        self._num_edges -= len(row)
        if self._present_sorted is not None:
            del self._present_sorted[bisect_index(self._present_sorted, peer_id)]
        return set(row)

    def degree_histogram(self) -> dict[int, int]:
        """Map degree -> number of peers with that degree."""
        histogram: dict[int, int] = {}
        for pid in self._sorted_present():
            d = self.degree(pid)
            histogram[d] = histogram.get(d, 0) + 1
        return histogram


def bisect_index(sorted_list: list[int], value: int) -> int:
    """Index of ``value`` in a sorted list (the caller guarantees presence)."""
    index = bisect_left(sorted_list, value)
    if index >= len(sorted_list) or sorted_list[index] != value:
        raise ValueError(f"{value} not present")
    return index


class DictOverlayGraph:
    """Dict-backed reference implementation of the overlay contract.

    Semantically identical to :class:`OverlayGraph` — same construction
    RNG draws, same insertion-ordered neighbor rows (``Dict[int, None]``
    rows preserve insertion order), same mutation rules — but with the
    per-peer object layout of the original implementation.  Kept so the
    substrate-equivalence suite can prove the array refactor changes
    nothing observable; not used on any production path.
    """

    def __init__(self, num_peers: int) -> None:
        if num_peers < 0:
            raise ValueError(f"num_peers must be non-negative, got {num_peers}")
        self._adjacency: dict[int, dict[int, None]] = {
            pid: {} for pid in range(num_peers)
        }

    @classmethod
    def random(
        cls,
        num_peers: int,
        mean_degree: float,
        rng: random.Random,
        connect_components: bool = True,
    ) -> DictOverlayGraph:
        rows = _random_rows(num_peers, mean_degree, rng, connect_components)
        graph = cls(num_peers)
        for pid, row in enumerate(rows):
            graph._adjacency[pid] = dict.fromkeys(row)
        return graph

    def copy(self) -> DictOverlayGraph:
        clone = DictOverlayGraph(0)
        clone._adjacency = {pid: dict(row) for pid, row in self._adjacency.items()}
        return clone

    def _add_edge(self, a: int, b: int) -> None:
        if b in self._adjacency[a]:
            return
        self._adjacency[a][b] = None
        self._adjacency[b][a] = None

    @property
    def num_peers(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(row) for row in self._adjacency.values()) // 2

    def peers(self) -> list[int]:
        return sorted(self._adjacency)

    def contains(self, peer_id: int) -> bool:
        return peer_id in self._adjacency

    def neighbors(self, peer_id: int) -> set[int]:
        return set(self._adjacency[peer_id])

    def neighbors_view(self, peer_id: int) -> Sequence[int]:
        return list(self._adjacency[peer_id])

    def degree(self, peer_id: int) -> int:
        return len(self._adjacency[peer_id])

    def mean_degree(self) -> float:
        if not self._adjacency:
            return 0.0
        return 2.0 * self.num_edges / len(self._adjacency)

    def highest_degree_neighbor(self, peer_id: int) -> int | None:
        best: int | None = None
        best_degree = -1
        for neighbor in sorted(self._adjacency[peer_id]):
            d = len(self._adjacency[neighbor])
            if d > best_degree:
                best = neighbor
                best_degree = d
        return best

    def components(self) -> list[set[int]]:
        seen: set[int] = set()
        components: list[set[int]] = []
        for start in sorted(self._adjacency):
            if start in seen:
                continue
            stack = [start]
            component = {start}
            seen.add(start)
            while stack:
                u = stack.pop()
                for v in self._adjacency[u]:
                    if v not in component:
                        component.add(v)
                        seen.add(v)
                        stack.append(v)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        return len(self.components()) <= 1

    def add_peer(self, peer_id: int, num_links: int, rng: random.Random) -> list[int]:
        if peer_id in self._adjacency:
            raise ValueError(f"peer {peer_id} already in the overlay")
        candidates = sorted(self._adjacency)
        self._adjacency[peer_id] = {}
        if not candidates:
            return []
        chosen = rng.sample(candidates, min(num_links, len(candidates)))
        for neighbor in chosen:
            self._add_edge(peer_id, neighbor)
        return chosen

    def remove_peer(self, peer_id: int) -> set[int]:
        row = self._adjacency.pop(peer_id, None)
        if row is None:
            raise KeyError(f"peer {peer_id} not in the overlay")
        for neighbor in row:
            self._adjacency[neighbor].pop(peer_id, None)
        return set(row)

    def degree_histogram(self) -> dict[int, int]:
        histogram: dict[int, int] = {}
        for row in self._adjacency.values():
            d = len(row)
            histogram[d] = histogram.get(d, 0) + 1
        return histogram
