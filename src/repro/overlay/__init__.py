"""Unstructured P2P overlay substrate: graph, peers, messages, churn."""

from .blueprint import NetworkBlueprint
from .churn import ChurnProcess
from .graph import OverlayGraph
from .messages import BloomUpdate, ProviderEntry, Query, QueryResponse
from .network import P2PNetwork
from .peer import BoundedSet, Peer

__all__ = [
    "OverlayGraph",
    "Peer",
    "BoundedSet",
    "ProviderEntry",
    "Query",
    "QueryResponse",
    "BloomUpdate",
    "P2PNetwork",
    "NetworkBlueprint",
    "ChurnProcess",
]
