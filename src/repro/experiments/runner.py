"""Experiment driver: build → run → measure, per protocol.

:func:`run_protocol` executes one protocol under one configuration and
query horizon; :func:`run_comparison` executes the paper's full
four-way comparison on the *identical* workload (same seed → same
topology, same catalog, same query stream) and returns everything the
figures need.

The driver advances virtual time in bounded slices until the workload
has been fully generated and every in-flight query has been finalised;
background processes (Bloom pushes, churn) would otherwise keep the
event queue alive forever.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.collectors import (
    MetricSeries,
    OutcomeSummary,
    collect_series,
    summarize_outcomes,
)
from ..core.locaware import LocawareProtocol
from ..overlay.blueprint import NetworkBlueprint
from ..overlay.churn import ChurnProcess
from ..overlay.network import P2PNetwork
from ..protocols.base import QueryOutcome, SearchProtocol
from ..protocols.dicas import DicasProtocol
from ..protocols.dicas_keys import DicasKeysProtocol
from ..protocols.flooding import FloodingProtocol
from ..scenarios import Scenario, ScenarioContext, get_scenario
from ..sim.config import SimulationConfig
from ..sim.telemetry import PhaseTimers, RunTelemetry, collect_run_telemetry
from ..sim.tracing import JsonlTracer, Tracer
from ..workload.generator import QueryWorkload
from ..workload.shifting import ShiftingZipfWorkload

__all__ = [
    "PROTOCOL_REGISTRY",
    "DEFAULT_PROTOCOL_ORDER",
    "ProtocolRun",
    "ComparisonResult",
    "run_protocol",
    "run_comparison",
]

#: name → protocol class, in the paper's presentation order.
PROTOCOL_REGISTRY: dict[str, type[SearchProtocol]] = {
    "flooding": FloodingProtocol,
    "dicas": DicasProtocol,
    "dicas-keys": DicasKeysProtocol,
    "locaware": LocawareProtocol,
}

DEFAULT_PROTOCOL_ORDER = ("flooding", "dicas", "dicas-keys", "locaware")

#: Virtual-time slice per driver iteration (seconds).
_TIME_SLICE_S = 500.0
#: Hard cap on driver iterations (protects against scheduling bugs).
_MAX_SLICES = 1_000_000


@dataclass
class ProtocolRun:
    """Everything measured from one protocol's run."""

    protocol_name: str
    config: SimulationConfig
    outcomes: list[QueryOutcome]
    summary: OutcomeSummary
    series: MetricSeries
    locally_satisfied: int
    sim_time_s: float
    events_processed: int
    metric_snapshot: dict[str, float]
    scenario_name: str | None = None
    """Registered scenario the run used, if any."""

    telemetry: RunTelemetry | None = None
    """Operational sidecar (wall-clock phases, engine stats, counters).

    Never part of persisted documents or determinism fingerprints — two
    identical runs legitimately differ here."""


@dataclass
class ComparisonResult:
    """The four-way comparison backing Figures 2-4."""

    config: SimulationConfig
    """The configuration the runs actually used (after scenario overrides)."""

    max_queries: int
    bucket_width: int
    runs: dict[str, ProtocolRun] = field(default_factory=dict)

    scenario_name: str | None = None
    """Registered scenario every run used, if any (claim checks target
    the baseline regime; a persisted scenario comparison must say so)."""

    def bucket_edges(self) -> list[int]:
        """Common x-axis across protocols (longest run wins)."""
        edges: list[int] = []
        for run in self.runs.values():
            candidate = run.series.bucket_edges()
            if len(candidate) > len(edges):
                edges = candidate
        return edges

    def summaries(self) -> dict[str, OutcomeSummary]:
        """Per-protocol whole-run aggregates, keyed by protocol name."""
        return {name: run.summary for name, run in self.runs.items()}

    def series(self) -> dict[str, MetricSeries]:
        """Per-protocol figure series, keyed by protocol name."""
        return {name: run.series for name, run in self.runs.items()}


def make_protocol(
    name: str, network: P2PNetwork, location_aware_routing: bool = False
) -> SearchProtocol:
    """Instantiate a registered protocol on ``network``."""
    try:
        cls = PROTOCOL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; known: {sorted(PROTOCOL_REGISTRY)}"
        ) from None
    if cls is LocawareProtocol:
        return LocawareProtocol(network, location_aware_routing=location_aware_routing)
    return cls(network)


def run_protocol(
    config: SimulationConfig,
    protocol_name: str,
    max_queries: int,
    bucket_width: int,
    tracer: Tracer | None = None,
    location_aware_routing: bool = False,
    popularity_shift_s: float | None = None,
    scenario: Scenario | str | None = None,
    blueprint: NetworkBlueprint | None = None,
    trace_path: str | Path | None = None,
    trace_kinds: Sequence[str] | None = None,
    collect_telemetry: bool = True,
) -> ProtocolRun:
    """Run one protocol to completion and collect its metrics.

    ``popularity_shift_s`` switches the workload to
    :class:`~repro.workload.shifting.ShiftingZipfWorkload` with the
    given re-draw interval (the drift extension).

    ``scenario`` — a :class:`~repro.scenarios.Scenario` instance or
    registered scenario name — applies the scenario's config overrides,
    builds its workload, and runs its install hook.  Mutually exclusive
    with ``popularity_shift_s``.

    ``blueprint`` — an optional pre-built
    :class:`~repro.overlay.blueprint.NetworkBlueprint` to instantiate
    instead of building the world from scratch.  It must carry the same
    topology fingerprint as the *effective* configuration (after the
    scenario's overrides); results are byte-identical either way.

    ``trace_path`` streams every trace event to a JSONL file (see
    :class:`~repro.sim.tracing.JsonlTracer`); ``trace_kinds`` optionally
    restricts the recorded kinds.  Mutually exclusive with ``tracer``.
    Tracing never changes results — outcomes, metric snapshots, and
    fingerprints are byte-identical with tracing on or off.

    ``collect_telemetry`` attaches a
    :class:`~repro.sim.telemetry.RunTelemetry` sidecar to the returned
    run (wall-clock phases, event-loop stats, operational counters);
    it too is inert — assembled read-only after the run finishes.
    """
    if max_queries < 1:
        raise ValueError(f"max_queries must be >= 1, got {max_queries}")
    if scenario is not None and popularity_shift_s is not None:
        raise ValueError("scenario and popularity_shift_s are mutually exclusive")
    if trace_path is not None and tracer is not None:
        raise ValueError("trace_path and tracer are mutually exclusive")
    if trace_kinds is not None and trace_path is None:
        raise ValueError("trace_kinds requires trace_path")
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if scenario is not None:
        configured = scenario.configure(config)
        if (
            not scenario.touches_topology
            and configured.topology_fingerprint() != config.topology_fingerprint()
        ):
            raise RuntimeError(
                f"scenario {scenario.name!r} declares touches_topology=False "
                "but its overrides changed the topology fingerprint; fix the "
                "declaration or the overrides"
            )
        config = configured
    own_tracer: JsonlTracer | None = None
    if trace_path is not None:
        own_tracer = JsonlTracer(
            trace_path, kinds=list(trace_kinds) if trace_kinds is not None else None
        )
        tracer = own_tracer
    timers = PhaseTimers()
    try:
        if blueprint is not None:
            if not blueprint.compatible_with(config):
                raise ValueError(
                    "blueprint is topology-incompatible with the effective "
                    f"configuration of this run (protocol {protocol_name!r}, "
                    f"scenario {scenario.name if scenario else None!r})"
                )
            with timers.phase("instantiate"):
                network = blueprint.instantiate(config=config, tracer=tracer)
        else:
            with timers.phase("build"):
                built = NetworkBlueprint.build(config)
            with timers.phase("instantiate"):
                network = built.instantiate(tracer=tracer)
        with timers.phase("instantiate"):
            protocol = make_protocol(
                protocol_name, network, location_aware_routing=location_aware_routing
            )
            protocol.start()
            churn: ChurnProcess | None = None
            if config.churn_enabled:
                churn = ChurnProcess(
                    network,
                    config.mean_session_s,
                    config.mean_downtime_s,
                    network.streams.stream("churn"),
                    on_rejoin=lambda pid: protocol.init_peer(network.peer(pid)),
                )
                churn.start()
            if scenario is not None:
                workload: QueryWorkload = scenario.build_workload(
                    network, protocol.issue_query, max_queries
                )
            elif popularity_shift_s is not None:
                workload = ShiftingZipfWorkload(
                    network,
                    protocol.issue_query,
                    shift_interval_s=popularity_shift_s,
                    max_queries=max_queries,
                )
            else:
                workload = QueryWorkload(
                    network, protocol.issue_query, max_queries=max_queries
                )
            if scenario is not None:
                scenario.install(
                    ScenarioContext(
                        network=network, protocol=protocol, workload=workload,
                        churn=churn,
                    )
                )
        with timers.phase("simulate"):
            workload.start()
            _drive(network, protocol, workload, max_queries)
            stop = getattr(protocol, "stop", None)
            if callable(stop):
                stop()
        with timers.phase("finalize"):
            run = ProtocolRun(
                protocol_name=protocol_name,
                config=config,
                outcomes=list(protocol.outcomes),
                summary=summarize_outcomes(protocol.outcomes),
                series=collect_series(protocol.outcomes, bucket_width),
                locally_satisfied=protocol.local_satisfactions,
                sim_time_s=network.sim.now,
                events_processed=network.sim.events_processed,
                metric_snapshot=network.metrics.snapshot(),
                scenario_name=scenario.name if scenario is not None else None,
            )
    finally:
        if own_tracer is not None:
            own_tracer.close()
    if collect_telemetry:
        run.telemetry = collect_run_telemetry(network, timers, tracer=tracer)
    return run


def _drive(
    network: P2PNetwork,
    protocol: SearchProtocol,
    workload: QueryWorkload,
    max_queries: int,
) -> None:
    """Advance time until the workload is generated and settled."""
    for _ in range(_MAX_SLICES):
        if workload.generated >= max_queries and protocol.pending_queries == 0:
            return
        if network.sim.peek_time() is None:
            if workload.generated < max_queries:
                raise RuntimeError(
                    "event queue drained before the workload finished: "
                    f"{workload.generated} of {max_queries} queries "
                    "generated; the workload stopped rescheduling itself "
                    "(e.g. every peer died with no revival timer armed)"
                )
            return
        network.sim.run(until=network.sim.now + _TIME_SLICE_S)
    raise RuntimeError(
        "simulation did not settle; check for runaway event scheduling"
    )


def run_comparison(
    config: SimulationConfig,
    max_queries: int,
    bucket_width: int,
    protocols: Sequence[str] = DEFAULT_PROTOCOL_ORDER,
    progress: Callable[[str], None] | None = None,
    scenario: Scenario | str | None = None,
    location_aware_routing: bool = False,
) -> ComparisonResult:
    """Run every requested protocol on the identical workload.

    The immutable world is built exactly once (one
    :class:`~repro.overlay.blueprint.NetworkBlueprint`) and
    instantiated per protocol — same topology, same catalog, same query
    stream, a fraction of the construction cost.  ``scenario`` and
    ``location_aware_routing`` are forwarded to every
    :func:`run_protocol` call, so the comparison can be produced under
    any registered regime.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    effective = scenario.configure(config) if scenario is not None else config
    blueprint = NetworkBlueprint.build(effective)
    result = ComparisonResult(
        config=effective,
        max_queries=max_queries,
        bucket_width=bucket_width,
        scenario_name=scenario.name if scenario is not None else None,
    )
    for name in protocols:
        if progress is not None:
            progress(f"running {name} ({max_queries} queries)...")
        result.runs[name] = run_protocol(
            config,
            name,
            max_queries,
            bucket_width,
            location_aware_routing=location_aware_routing,
            scenario=scenario,
            blueprint=blueprint,
        )
    return result
