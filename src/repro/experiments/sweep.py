"""Protocol × scenario × seed sweeps, optionally across processes.

The grid's cells are embarrassingly parallel: every cell is one
self-contained, seed-deterministic :func:`~repro.experiments.runner.
run_protocol` call (its own simulator, network, and named random
streams), so :class:`SweepRunner` can fan cells out over a
``multiprocessing`` pool with no shared state and no ordering effects —
``workers=1`` and ``workers=N`` produce identical results cell for
cell, which ``tests/test_determinism.py`` locks in.

Usage::

    runner = SweepRunner(
        base_config=small_config(),
        protocols=("flooding", "locaware"),
        scenarios=("baseline", "flash-crowd"),
        seeds=(1, 2),
        max_queries=200,
        workers=4,
    )
    report = runner.run(progress=print)
    print(render_sweep_report(report))

``repro sweep`` is the CLI face of this module.
"""

from __future__ import annotations

import math
import multiprocessing
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..overlay.blueprint import NetworkBlueprint
from ..scenarios import get_scenario
from ..sim.config import SimulationConfig
from .runner import DEFAULT_PROTOCOL_ORDER, PROTOCOL_REGISTRY, ProtocolRun, run_protocol
from .setup import paper_config

__all__ = ["SweepCell", "SweepReport", "SweepRunner"]

#: Per-process blueprint cache, keyed by topology fingerprint.  Worker
#: processes live for the whole sweep (no ``maxtasksperchild``), so a
#: worker that already built a cell's topology instantiates it for
#: every later cell with the same fingerprint instead of rebuilding.
_BLUEPRINT_CACHE: "OrderedDict[str, NetworkBlueprint]" = OrderedDict()

#: Blueprints retained per process (small LRU: with reuse-friendly task
#: ordering, consecutive cells share a fingerprint anyway).
_BLUEPRINT_CACHE_CAPACITY = 8


def _cached_blueprint(config: SimulationConfig) -> NetworkBlueprint:
    """The blueprint for ``config``, built at most once per process."""
    fingerprint = config.topology_fingerprint()
    blueprint = _BLUEPRINT_CACHE.get(fingerprint)
    if blueprint is None:
        blueprint = NetworkBlueprint.build(config)
        _BLUEPRINT_CACHE[fingerprint] = blueprint
        if len(_BLUEPRINT_CACHE) > _BLUEPRINT_CACHE_CAPACITY:
            _BLUEPRINT_CACHE.popitem(last=False)
    else:
        _BLUEPRINT_CACHE.move_to_end(fingerprint)
    return blueprint


@dataclass(frozen=True)
class SweepCell:
    """One grid coordinate: which protocol, under which regime, which seed."""

    protocol: str
    scenario: str
    seed: int


@dataclass
class SweepReport:
    """Every cell's results plus the grid that produced them."""

    base_config: SimulationConfig
    protocols: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    seeds: Tuple[int, ...]
    max_queries: int
    bucket_width: int
    runs: Dict[SweepCell, ProtocolRun] = field(default_factory=dict)

    @property
    def num_cells(self) -> int:
        """Grid size (protocols × scenarios × seeds)."""
        return len(self.runs)

    def run_for(self, protocol: str, scenario: str, seed: int) -> ProtocolRun:
        """The result of one cell."""
        return self.runs[SweepCell(protocol=protocol, scenario=scenario, seed=seed)]

    def seed_runs(self, protocol: str, scenario: str) -> List[ProtocolRun]:
        """One (protocol, scenario) row: its runs across all seeds."""
        return [self.run_for(protocol, scenario, seed) for seed in self.seeds]

    def mean_over_seeds(
        self, protocol: str, scenario: str, metric: Callable[[ProtocolRun], float]
    ) -> float:
        """Average ``metric(run)`` across the seeds of one row.

        NaN cells (e.g. no successful download on one seed) are
        excluded, matching :func:`repro.analysis.aggregate_sweep`;
        ``nan`` only when every seed is NaN.
        """
        values = [metric(run) for run in self.seed_runs(protocol, scenario)]
        clean = [v for v in values if not math.isnan(v)]
        return sum(clean) / len(clean) if clean else math.nan


class SweepRunner:
    """Fans a protocol × scenario × seed grid across worker processes.

    Parameters
    ----------
    base_config:
        Configuration every cell starts from; each cell replaces the
        seed, then applies its scenario's overrides.  Defaults to the
        paper's §5.1 setup.
    protocols / scenarios / seeds:
        The grid axes.  Protocols and scenarios are validated against
        their registries up front so a typo fails before any simulation
        runs.
    workers:
        Process count.  ``1`` runs serially in-process (no pool); the
        effective count never exceeds the number of cells.
    reuse_builds:
        Build each distinct topology at most once per worker process
        and instantiate it per cell (see
        :class:`~repro.overlay.blueprint.NetworkBlueprint`), instead of
        rebuilding the world for every cell.  Cells sharing a scenario
        and seed share a build; results are byte-identical either way
        (``tests/test_determinism.py`` locks this in).
    """

    def __init__(
        self,
        base_config: Optional[SimulationConfig] = None,
        protocols: Sequence[str] = DEFAULT_PROTOCOL_ORDER,
        scenarios: Sequence[str] = ("baseline",),
        seeds: Sequence[int] = (20090322,),
        max_queries: int = 200,
        bucket_width: Optional[int] = None,
        workers: int = 1,
        reuse_builds: bool = False,
    ) -> None:
        if not protocols:
            raise ValueError("at least one protocol is required")
        if not scenarios:
            raise ValueError("at least one scenario is required")
        if not seeds:
            raise ValueError("at least one seed is required")
        if len(set(seeds)) != len(seeds):
            raise ValueError(f"seeds must be unique, got {list(seeds)}")
        if max_queries < 1:
            raise ValueError(f"max_queries must be >= 1, got {max_queries}")
        if bucket_width is not None and bucket_width < 1:
            raise ValueError(f"bucket_width must be >= 1, got {bucket_width}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        for name in protocols:
            if name not in PROTOCOL_REGISTRY:
                raise ValueError(
                    f"unknown protocol {name!r}; known: {sorted(PROTOCOL_REGISTRY)}"
                )
        for name in scenarios:
            get_scenario(name)  # raises with the known-names list
        self.base_config = base_config if base_config is not None else paper_config()
        self.protocols = tuple(protocols)
        self.scenarios = tuple(scenarios)
        self.seeds = tuple(seeds)
        self.max_queries = max_queries
        self.bucket_width = (
            bucket_width if bucket_width is not None else max(1, max_queries // 8)
        )
        self.workers = workers
        self.reuse_builds = reuse_builds

    def cells(self) -> List[SweepCell]:
        """The grid in its deterministic execution order."""
        return [
            SweepCell(protocol=protocol, scenario=scenario, seed=seed)
            for scenario in self.scenarios
            for protocol in self.protocols
            for seed in self.seeds
        ]

    def run(
        self, progress: Optional[Callable[[str], None]] = None
    ) -> SweepReport:
        """Execute every cell and assemble the report.

        ``progress`` (if given) receives one line per completed cell.
        Results are keyed by :class:`SweepCell`, so completion order —
        which *does* vary across pools and with ``reuse_builds`` —
        never affects the report.
        """
        cells = self.cells()
        if self.reuse_builds:
            # Same-topology cells (same scenario and seed) are made
            # contiguous and dispatched chunk-wise, so each chunk hits
            # a worker's blueprint cache after one build.  Cell results
            # are order-independent, so this only changes scheduling.
            cells = sorted(
                cells, key=lambda c: (c.scenario, c.seed, c.protocol)
            )
        tasks = [
            (
                cell,
                self.base_config,
                self.max_queries,
                self.bucket_width,
                self.reuse_builds,
            )
            for cell in cells
        ]
        report = SweepReport(
            base_config=self.base_config,
            protocols=self.protocols,
            scenarios=self.scenarios,
            seeds=self.seeds,
            max_queries=self.max_queries,
            bucket_width=self.bucket_width,
        )
        workers = min(self.workers, len(tasks))
        total = len(tasks)
        if workers == 1:
            completed = (_run_cell(task) for task in tasks)
            for done, (cell, run) in enumerate(completed, start=1):
                report.runs[cell] = run
                _note(progress, done, total, cell)
        else:
            # fork keeps the registries without re-importing; platforms
            # without it (or with it disabled) fall back to the default
            # start method, where workers re-import this module and the
            # scenario library with it.
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            chunksize = len(self.protocols) if self.reuse_builds else 1
            with context.Pool(processes=workers) as pool:
                for done, (cell, run) in enumerate(
                    pool.imap(_run_cell, tasks, chunksize=chunksize), start=1
                ):
                    report.runs[cell] = run
                    _note(progress, done, total, cell)
        return report


def _note(
    progress: Optional[Callable[[str], None]], done: int, total: int, cell: SweepCell
) -> None:
    if progress is not None:
        progress(
            f"[{done}/{total}] {cell.scenario} × {cell.protocol} "
            f"(seed {cell.seed})"
        )


def _run_cell(
    task: Tuple[SweepCell, SimulationConfig, int, int, bool]
) -> Tuple[SweepCell, ProtocolRun]:
    """Execute one grid cell (top-level so worker processes can pickle it)."""
    cell, base_config, max_queries, bucket_width, reuse_builds = task
    config = base_config.replace(seed=cell.seed)
    blueprint: Optional[NetworkBlueprint] = None
    if reuse_builds:
        # Key the cache by the *effective* configuration so scenarios
        # that do touch topology (e.g. cold-start's sparser shares)
        # still share one build across the protocols of their row.
        blueprint = _cached_blueprint(get_scenario(cell.scenario).configure(config))
    run = run_protocol(
        config,
        cell.protocol,
        max_queries=max_queries,
        bucket_width=bucket_width,
        scenario=cell.scenario,
        blueprint=blueprint,
    )
    return cell, run
