"""Protocol × scenario × seed sweeps, optionally across processes.

The grid's cells are embarrassingly parallel: every cell is one
self-contained, seed-deterministic :func:`~repro.experiments.runner.
run_protocol` call (its own simulator, network, and named random
streams), so :class:`SweepRunner` can fan cells out over a
``multiprocessing`` pool with no shared state and no ordering effects —
``workers=1`` and ``workers=N`` produce identical results cell for
cell, which ``tests/test_determinism.py`` locks in.

Since the experiment-grid subsystem landed, this module is a thin
named-scenario face over the one sweep engine in
:mod:`repro.experiments.grid`: ``SweepRunner`` builds a
:class:`~repro.experiments.grid.GridSpec` (no scenario parameters, no
config-override axis) and drives it through
:func:`~repro.experiments.grid.execute_cells`.  Use the grid API
directly when you need parameterised scenarios, config-override axes,
or the resumable result store.

Usage::

    runner = SweepRunner(
        base_config=small_config(),
        protocols=("flooding", "locaware"),
        scenarios=("baseline", "flash-crowd"),
        seeds=(1, 2),
        max_queries=200,
        workers=4,
    )
    report = runner.run(progress=print)
    print(render_sweep_report(report))

``repro sweep`` is the CLI face of this module.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..scenarios import get_scenario
from ..sim.config import SimulationConfig
from .grid import (
    GridSpec,
    _BLUEPRINT_CACHE,
    _BLUEPRINT_CACHE_CAPACITY,
    _cached_blueprint,
    execute_cells,
)
from .runner import DEFAULT_PROTOCOL_ORDER, PROTOCOL_REGISTRY, ProtocolRun
from .setup import paper_config

__all__ = ["SweepCell", "SweepReport", "SweepRunner"]

# Re-exported for callers (tests, benches) that manage the per-process
# blueprint cache through this module; the cache itself lives with the
# engine in repro.experiments.grid.
_ = (_BLUEPRINT_CACHE, _BLUEPRINT_CACHE_CAPACITY, _cached_blueprint)


@dataclass(frozen=True)
class SweepCell:
    """One grid coordinate: which protocol, under which regime, which seed."""

    protocol: str
    scenario: str
    seed: int


@dataclass
class SweepReport:
    """Every cell's results plus the grid that produced them."""

    base_config: SimulationConfig
    protocols: tuple[str, ...]
    scenarios: tuple[str, ...]
    seeds: tuple[int, ...]
    max_queries: int
    bucket_width: int
    runs: dict[SweepCell, ProtocolRun] = field(default_factory=dict)

    @property
    def num_cells(self) -> int:
        """Grid size (protocols × scenarios × seeds)."""
        return len(self.runs)

    def run_for(self, protocol: str, scenario: str, seed: int) -> ProtocolRun:
        """The result of one cell."""
        return self.runs[SweepCell(protocol=protocol, scenario=scenario, seed=seed)]

    def seed_runs(self, protocol: str, scenario: str) -> list[ProtocolRun]:
        """One (protocol, scenario) row: its runs across all seeds."""
        return [self.run_for(protocol, scenario, seed) for seed in self.seeds]

    def mean_over_seeds(
        self, protocol: str, scenario: str, metric: Callable[[ProtocolRun], float]
    ) -> float:
        """Average ``metric(run)`` across the seeds of one row.

        NaN cells (e.g. no successful download on one seed) are
        excluded, matching :func:`repro.analysis.aggregate_sweep`;
        ``nan`` only when every seed is NaN.
        """
        values = [metric(run) for run in self.seed_runs(protocol, scenario)]
        clean = [v for v in values if not math.isnan(v)]
        return sum(clean) / len(clean) if clean else math.nan


class SweepRunner:
    """Fans a protocol × scenario × seed grid across worker processes.

    Parameters
    ----------
    base_config:
        Configuration every cell starts from; each cell replaces the
        seed, then applies its scenario's overrides.  Defaults to the
        paper's §5.1 setup.
    protocols / scenarios / seeds:
        The grid axes.  Protocols and scenarios are validated against
        their registries up front so a typo fails before any simulation
        runs.
    workers:
        Process count.  ``1`` runs serially in-process (no pool); the
        effective count never exceeds the number of cells.
    reuse_builds:
        Build each distinct topology at most once — in the parent,
        with ``fork`` workers inheriting the prebuilt worlds
        copy-on-write (lazily per worker on platforms without fork) —
        and instantiate it per cell (see
        :class:`~repro.overlay.blueprint.NetworkBlueprint` /
        :class:`~repro.experiments.grid.GridWorkerPool`), instead of
        rebuilding the world for every cell.  Cells sharing a scenario
        and seed share a build; results are byte-identical either way
        (``tests/test_determinism.py`` locks this in).
    """

    def __init__(
        self,
        base_config: SimulationConfig | None = None,
        protocols: Sequence[str] = DEFAULT_PROTOCOL_ORDER,
        scenarios: Sequence[str] = ("baseline",),
        seeds: Sequence[int] = (20090322,),
        max_queries: int = 200,
        bucket_width: int | None = None,
        workers: int = 1,
        reuse_builds: bool = False,
    ) -> None:
        if not protocols:
            raise ValueError("at least one protocol is required")
        if not scenarios:
            raise ValueError("at least one scenario is required")
        if not seeds:
            raise ValueError("at least one seed is required")
        if len(set(protocols)) != len(protocols):
            raise ValueError(f"protocols must be unique, got {list(protocols)}")
        if len(set(scenarios)) != len(scenarios):
            raise ValueError(f"scenarios must be unique, got {list(scenarios)}")
        if len(set(seeds)) != len(seeds):
            raise ValueError(f"seeds must be unique, got {list(seeds)}")
        if max_queries < 1:
            raise ValueError(f"max_queries must be >= 1, got {max_queries}")
        if bucket_width is not None and bucket_width < 1:
            raise ValueError(f"bucket_width must be >= 1, got {bucket_width}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        for name in protocols:
            if name not in PROTOCOL_REGISTRY:
                raise ValueError(
                    f"unknown protocol {name!r}; known: {sorted(PROTOCOL_REGISTRY)}"
                )
        for name in scenarios:
            get_scenario(name)  # raises with the known-names list
        self.base_config = base_config if base_config is not None else paper_config()
        self.protocols = tuple(protocols)
        self.scenarios = tuple(scenarios)
        self.seeds = tuple(seeds)
        self.max_queries = max_queries
        self.bucket_width = (
            bucket_width if bucket_width is not None else max(1, max_queries // 8)
        )
        self.workers = workers
        self.reuse_builds = reuse_builds

    def _spec(self) -> GridSpec:
        """This sweep as a (parameterless) grid spec."""
        return GridSpec(
            base_config=self.base_config,
            protocols=self.protocols,
            scenarios=self.scenarios,
            seeds=self.seeds,
            max_queries=self.max_queries,
            bucket_width=self.bucket_width,
        )

    def cells(self) -> list[SweepCell]:
        """The grid in its deterministic execution order."""
        return [
            SweepCell(protocol=protocol, scenario=scenario, seed=seed)
            for scenario in self.scenarios
            for protocol in self.protocols
            for seed in self.seeds
        ]

    def run(
        self, progress: Callable[[str], None] | None = None
    ) -> SweepReport:
        """Execute every cell and assemble the report.

        ``progress`` (if given) receives one line per completed cell.
        Results are keyed by :class:`SweepCell`, so completion order —
        which *does* vary across pools and with ``reuse_builds`` —
        never affects the report.
        """
        spec = self._spec()
        report = SweepReport(
            base_config=self.base_config,
            protocols=self.protocols,
            scenarios=self.scenarios,
            seeds=self.seeds,
            max_queries=self.max_queries,
            bucket_width=self.bucket_width,
        )
        for cell, run in execute_cells(
            spec,
            spec.expand(),
            workers=self.workers,
            reuse_builds=self.reuse_builds,
            progress=progress,
        ):
            report.runs[
                SweepCell(
                    protocol=cell.protocol,
                    scenario=cell.scenario.name,
                    seed=cell.seed,
                )
            ] = run
        return report
