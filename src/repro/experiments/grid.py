"""Declarative experiment grids with a resumable, content-addressed cache.

The paper's evaluation — and every ablation after it — is a grid:
**protocol × scenario-with-parameter-overrides × config-overrides ×
seed**.  :class:`GridSpec` declares that grid, expands it into
:class:`GridCell` coordinates, and validates every axis up front (a
typo'd scenario parameter fails before any simulation runs).
:class:`GridRunner` executes the cells — serial or across a
``multiprocessing`` pool — and, when given a
:class:`~repro.results.store.ResultStore`, persists each completed
cell under its content-addressed key and *skips* every cell the store
already holds.  An interrupted 500-cell sweep restarts at full speed;
a repeated one costs zero executions.

This module is also the single sweep engine: :class:`~repro.
experiments.sweep.SweepRunner` and :func:`~repro.experiments.
robustness.run_seed_sweep` both drive their cells through
:func:`execute_cells`, so serial/parallel equivalence and blueprint
reuse are implemented (and tested) exactly once.

Usage::

    spec = GridSpec(
        base_config=small_config(),
        protocols=("flooding", "locaware"),
        scenarios=("baseline", "churn-storm:storm_session_s=120"),
        config_overrides=({}, {"ttl": 5}),
        seeds=(1, 2),
        max_queries=200,
    )
    report = GridRunner(spec, workers=4, store=ResultStore("results")).run()
    print(render_sweep_report(report))

``repro grid run|report|ls`` is the CLI face of this module.
"""

from __future__ import annotations

import cProfile
import json
import math
import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Any

from ..analysis.persistence import grid_cell_to_document, load_grid_cell_document
from ..overlay.blueprint import BlueprintCache, NetworkBlueprint
from ..results import (
    DEFAULT_LEASE_TTL_S,
    ClaimStore,
    CorruptResultError,
    ResultStore,
    cell_key,
    cell_key_payload,
    cell_label,
)
from ..scenarios import make_scenario
from ..sim.config import SimulationConfig
from .runner import DEFAULT_PROTOCOL_ORDER, PROTOCOL_REGISTRY, run_protocol
from .setup import paper_config

__all__ = [
    "ScenarioSpec",
    "GridCell",
    "GridSpec",
    "GridReport",
    "GridRunner",
    "GridWorkerPool",
    "NonFiniteValueError",
    "execute_cells",
    "parse_scalar",
]

#: Blueprints retained per process under plain LRU churn (``prewarm``
#: grows the cache transiently; ``clear()`` restores this default).
_BLUEPRINT_CACHE_CAPACITY = 8

#: Per-process blueprint cache, keyed by topology fingerprint.  Worker
#: processes live for the whole sweep (no ``maxtasksperchild``), so a
#: worker that already built a cell's topology instantiates it for
#: every later cell with the same fingerprint instead of rebuilding —
#: and ``fork``-started workers inherit everything the parent
#: prewarmed copy-on-write (see :class:`GridWorkerPool`).
_BLUEPRINT_CACHE = BlueprintCache(capacity=_BLUEPRINT_CACHE_CAPACITY)


def _cached_blueprint(config: SimulationConfig) -> NetworkBlueprint:
    """The blueprint for ``config``, built at most once per process."""
    return _BLUEPRINT_CACHE.get(config)


class NonFiniteValueError(ValueError):
    """A grid value parsed to NaN/Infinity, which the grid forbids.

    Non-finite floats cannot ride through the content-addressed layer:
    ``json.dumps`` would emit the non-standard ``NaN``/``Infinity``
    tokens inside key payloads and stored documents (invalid JSON for
    strict parsers), and ``nan != nan`` silently defeats the
    duplicate-axis check.  They are rejected at parse/validation time
    with the offending axis named instead.
    """


def parse_scalar(text: str) -> Any:
    """Parse a CLI parameter value: JSON if it parses, else the string.

    ``"0.3"`` → 0.3, ``"5"`` → 5, ``"true"`` → True, ``"router"`` →
    ``"router"`` — the same coercion for scenario parameters and
    config-override values.  Values that *parse* but contain a
    non-finite float — the constants (``NaN``, ``Infinity``,
    ``-Infinity``), overflow forms such as ``1e999``, and composites
    like ``[1e999]`` — raise :class:`NonFiniteValueError` instead:
    they would poison content-addressed keys and duplicate detection
    downstream.  Text that is not valid JSON at all (``NaN-sweep``,
    ``router``) stays an ordinary string.
    """
    try:
        value = json.loads(text)
    except (json.JSONDecodeError, ValueError):
        return text
    if _first_non_finite(value) is not None:
        raise NonFiniteValueError(
            f"non-finite value {text!r} is not a valid grid value "
            "(it cannot round-trip through strict JSON, and NaN defeats "
            "duplicate detection)"
        )
    return value


def _first_non_finite(value: Any) -> float | None:
    """The first non-finite float anywhere inside ``value``, else None.

    Axis values can be JSON composites, so the check must recurse — a
    NaN hiding in a list would otherwise surface only as an opaque
    ``allow_nan=False`` failure deep inside key hashing, with no axis
    named.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return value
    if isinstance(value, (list, tuple)):
        for item in value:
            found = _first_non_finite(item)
            if found is not None:
                return found
    if isinstance(value, dict):
        for item in value.values():
            found = _first_non_finite(item)
            if found is not None:
                return found
    return None


def _check_finite(axis: str, name: str, value: Any) -> None:
    """Reject a non-finite axis value (at any depth), naming the axis."""
    found = _first_non_finite(value)
    if found is not None:
        raise ValueError(
            f"non-finite value {found!r} in {name!r} on the {axis} axis; "
            "NaN/Infinity cannot round-trip through strict JSON and NaN "
            "defeats duplicate detection"
        )


Items = tuple[tuple[str, Any], ...]


def _as_items(mapping: Mapping[str, Any]) -> Items:
    """A mapping as a hashable, canonically ordered item tuple."""
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario axis entry: a registered name plus parameter overrides."""

    name: str
    params: Items = ()

    @classmethod
    def coerce(cls, value: Any) -> ScenarioSpec:
        """Normalise an axis entry to a ScenarioSpec.

        Accepts a ScenarioSpec, a string (``"name"`` or
        ``"name:key=value,key=value"``), a ``(name, params_dict)``
        pair, or a ``{"name": ..., "params": {...}}`` mapping.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, Mapping):
            return cls(
                name=value["name"], params=_as_items(value.get("params", {}))
            )
        if isinstance(value, (tuple, list)) and len(value) == 2:
            name, params = value
            return cls(name=name, params=_as_items(params))
        raise ValueError(f"cannot interpret scenario axis entry {value!r}")

    @classmethod
    def parse(cls, text: str) -> ScenarioSpec:
        """Parse the CLI form ``name`` or ``name:key=value,key=value``."""
        name, _, raw = text.partition(":")
        if not raw:
            return cls(name=name)
        params: dict[str, Any] = {}
        for pair in raw.split(","):
            key, separator, value = pair.partition("=")
            if not separator or not key:
                raise ValueError(
                    f"malformed scenario parameter {pair!r} in {text!r}; "
                    "expected name:key=value[,key=value...]"
                )
            try:
                params[key.strip()] = parse_scalar(value)
            except NonFiniteValueError as error:
                raise ValueError(
                    f"scenario parameter {key.strip()!r} in {text!r}: {error}"
                ) from None
        return cls(name=name, params=_as_items(params))

    def params_dict(self) -> dict[str, Any]:
        """The parameter overrides as a plain dict."""
        return dict(self.params)

    def make(self):
        """Instantiate the scenario (validating name and parameters)."""
        return make_scenario(self.name, **self.params_dict())

    @property
    def label(self) -> str:
        """``name`` or ``name[k=v,...]``."""
        return cell_label(self.name, self.params_dict(), {})


@dataclass(frozen=True)
class GridCell:
    """One grid coordinate: protocol × scenario spec × overrides × seed."""

    protocol: str
    scenario: ScenarioSpec
    overrides: Items
    seed: int

    @property
    def label(self) -> str:
        """The cell's row label (scenario + params + config overrides)."""
        return cell_label(
            self.scenario.name, self.scenario.params_dict(), dict(self.overrides)
        )


class GridSpec:
    """A declarative protocol × scenario × config-override × seed grid.

    Every axis is validated eagerly and exhaustively — empty axes,
    duplicate entries, unknown protocols/scenarios/parameters/config
    fields all raise :class:`ValueError` naming the offending axis —
    so a 500-cell grid cannot die on cell 480 from a typo.

    Parameters
    ----------
    base_config:
        Configuration every cell starts from (default: paper §5.1).
    protocols:
        Axis 1 — registered protocol names.
    scenarios:
        Axis 2 — scenario specs: names, ``"name:key=value,..."``
        strings, ``(name, params)`` pairs, or :class:`ScenarioSpec`s.
    config_overrides:
        Axis 3 — mappings of :class:`~repro.sim.config.
        SimulationConfig` fields to values (``({},)`` = just the base
        config).  ``seed`` is forbidden here; it is its own axis.
    seeds:
        Axis 4 — master seeds, one full grid slice per seed.
    """

    def __init__(
        self,
        base_config: SimulationConfig | None = None,
        protocols: Sequence[str] = DEFAULT_PROTOCOL_ORDER,
        scenarios: Sequence[Any] = ("baseline",),
        config_overrides: Sequence[Mapping[str, Any]] = ({},),
        seeds: Sequence[int] = (20090322,),
        max_queries: int = 200,
        bucket_width: int | None = None,
    ) -> None:
        if max_queries < 1:
            raise ValueError(f"max_queries must be >= 1, got {max_queries}")
        if bucket_width is not None and bucket_width < 1:
            raise ValueError(f"bucket_width must be >= 1, got {bucket_width}")
        self.base_config = base_config if base_config is not None else paper_config()
        for name, value in self.base_config.to_dict().items():
            _check_finite("base-config", name, value)
        self.protocols = tuple(protocols)
        self.seeds = tuple(seeds)
        self.max_queries = max_queries
        self.bucket_width = (
            bucket_width if bucket_width is not None else max(1, max_queries // 8)
        )

        self._check_axis_not_empty("protocol", self.protocols)
        self._check_axis_not_empty("scenario", tuple(scenarios))
        self._check_axis_not_empty("config-override", tuple(config_overrides))
        self._check_axis_not_empty("seed", self.seeds)

        for name in self.protocols:
            if name not in PROTOCOL_REGISTRY:
                raise ValueError(
                    f"unknown protocol {name!r} on the protocol axis; "
                    f"known: {sorted(PROTOCOL_REGISTRY)}"
                )
        self._check_axis_unique("protocol", self.protocols)

        self.scenarios: tuple[ScenarioSpec, ...] = tuple(
            ScenarioSpec.coerce(entry) for entry in scenarios
        )
        for spec in self.scenarios:
            for param, value in spec.params:
                _check_finite("scenario", f"{spec.name}:{param}", value)
            try:
                spec.make()
            except ValueError as error:
                raise ValueError(f"scenario axis: {error}") from error
        self._check_axis_unique(
            "scenario", tuple(spec.label for spec in self.scenarios)
        )

        self.config_overrides: tuple[Items, ...] = tuple(
            self._check_override(dict(overrides)) for overrides in config_overrides
        )
        self._check_axis_unique("config-override", self.config_overrides)

        if not all(isinstance(seed, int) for seed in self.seeds):
            raise ValueError(f"seeds must be integers, got {list(self.seeds)}")
        self._check_axis_unique("seed", self.seeds)

    @staticmethod
    def _check_axis_not_empty(axis: str, values: tuple[Any, ...]) -> None:
        if not values:
            raise ValueError(f"the {axis} axis is empty")

    @staticmethod
    def _check_axis_unique(axis: str, values: tuple[Any, ...]) -> None:
        seen: set = set()
        duplicates = []
        for value in values:
            if value in seen and value not in duplicates:
                duplicates.append(value)
            seen.add(value)
        if duplicates:
            raise ValueError(
                f"duplicate entries on the {axis} axis would produce "
                f"duplicate cells: {duplicates!r}"
            )

    def _check_override(self, overrides: dict[str, Any]) -> Items:
        known = set(self.base_config.to_dict())
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ValueError(
                f"unknown config field(s) {unknown} on the config-override "
                f"axis; known fields: {sorted(known)}"
            )
        if "seed" in overrides:
            raise ValueError(
                "the config-override axis may not set 'seed'; "
                "seeds are their own axis"
            )
        for name, value in overrides.items():
            _check_finite("config-override", name, value)
        # Trial replace: a bad value fails now with the field named,
        # not 480 cells into the grid.
        self.base_config.replace(**overrides)
        return _as_items(overrides)

    @property
    def num_cells(self) -> int:
        """Grid size before any store deduplication."""
        return (
            len(self.protocols)
            * len(self.scenarios)
            * len(self.config_overrides)
            * len(self.seeds)
        )

    def expand(self) -> list[GridCell]:
        """The grid in its deterministic execution order."""
        return [
            GridCell(
                protocol=protocol, scenario=scenario, overrides=overrides, seed=seed
            )
            for scenario in self.scenarios
            for overrides in self.config_overrides
            for protocol in self.protocols
            for seed in self.seeds
        ]

    def cell_config(self, cell: GridCell) -> SimulationConfig:
        """The effective configuration of one cell (overrides + seed)."""
        config = self.base_config
        if cell.overrides:
            config = config.replace(**dict(cell.overrides))
        return config.replace(seed=cell.seed)

    def cell_build_config(self, cell: GridCell) -> SimulationConfig:
        """The scenario-configured effective config of one cell.

        This is the configuration the cell's world is built from — the
        blueprint-cache key — so scenarios that do touch topology (e.g.
        cold-start's sparser shares) key their own builds.
        """
        return cell.scenario.make().configure(self.cell_config(cell))

    def cell_key(self, cell: GridCell) -> str:
        """The content-addressed store key of one cell."""
        return cell_key(self.cell_key_payload(cell))

    def cell_key_payload(self, cell: GridCell) -> dict[str, Any]:
        """Everything that determines the cell's results, as a dict.

        Scenario parameters enter the payload *resolved* — explicit
        overrides merged over the instantiated scenario's attribute
        values — so changing a scenario constructor default changes
        the key and invalidates stale cached cells (and, conversely,
        spelling out a default explicitly hits the same cache entry as
        omitting it, since the results are identical).
        """
        from ..scenarios import scenario_parameters

        effective = self.cell_config(cell)
        scenario = cell.scenario.make()
        configured = scenario.configure(effective)
        resolved = dict(cell.scenario.params)
        for name in scenario_parameters(cell.scenario.name):
            if name not in resolved and hasattr(scenario, name):
                resolved[name] = getattr(scenario, name)
        return cell_key_payload(
            config=effective.to_dict(),
            protocol=cell.protocol,
            scenario_name=cell.scenario.name,
            scenario_params=resolved,
            max_queries=self.max_queries,
            bucket_width=self.bucket_width,
            topology_fingerprint=configured.topology_fingerprint(),
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able description (``from_dict`` restores it)."""
        return {
            "base_config": self.base_config.to_dict(),
            "protocols": list(self.protocols),
            "scenarios": [
                {"name": spec.name, "params": spec.params_dict()}
                for spec in self.scenarios
            ],
            "config_overrides": [dict(items) for items in self.config_overrides],
            "seeds": list(self.seeds),
            "max_queries": self.max_queries,
            "bucket_width": self.bucket_width,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> GridSpec:
        """Rebuild a spec from :meth:`to_dict` output (e.g. a spec file)."""
        base = doc.get("base_config")
        return cls(
            base_config=SimulationConfig(**base) if base else None,
            protocols=doc.get("protocols", DEFAULT_PROTOCOL_ORDER),
            scenarios=doc.get("scenarios", ("baseline",)),
            config_overrides=doc.get("config_overrides", ({},)),
            seeds=doc.get("seeds", (20090322,)),
            max_queries=doc.get("max_queries", 200),
            bucket_width=doc.get("bucket_width"),
        )


@dataclass
class GridReport:
    """Every cell's results plus the spec and cache accounting.

    Duck-type compatible with :class:`~repro.experiments.sweep.
    SweepReport` for :func:`repro.analysis.aggregate_sweep` /
    :func:`repro.analysis.render_sweep_report`: ``scenarios`` exposes
    *row labels* (scenario + params + overrides), one per (scenario,
    config-override) combination.
    """

    spec: GridSpec
    runs: dict[GridCell, Any] = field(default_factory=dict)
    executed: int = 0
    cached: int = 0
    #: Stored documents that failed to parse, were quarantined by the
    #: store, and re-executed (crash/corruption recovery accounting).
    quarantined: int = 0

    @property
    def base_config(self) -> SimulationConfig:
        """The spec's base configuration."""
        return self.spec.base_config

    @property
    def protocols(self) -> tuple[str, ...]:
        """The protocol axis."""
        return self.spec.protocols

    @property
    def seeds(self) -> tuple[int, ...]:
        """The seed axis."""
        return self.spec.seeds

    @property
    def max_queries(self) -> int:
        """Per-cell query horizon."""
        return self.spec.max_queries

    @property
    def bucket_width(self) -> int:
        """Per-cell figure bucket width."""
        return self.spec.bucket_width

    @property
    def num_cells(self) -> int:
        """How many cells the report holds."""
        return len(self.runs)

    @property
    def scenarios(self) -> tuple[str, ...]:
        """Row labels, one per (scenario spec, config override)."""
        return tuple(self._rows)

    @cached_property
    def _rows(self) -> OrderedDict[str, tuple[ScenarioSpec, Items]]:
        # label → (scenario spec, overrides), built once: the spec is
        # immutable, and aggregate/render call run_for per cell.
        return OrderedDict(
            (
                cell_label(spec.name, spec.params_dict(), dict(overrides)),
                (spec, overrides),
            )
            for spec in self.spec.scenarios
            for overrides in self.spec.config_overrides
        )

    def run_for(self, protocol: str, scenario: str, seed: int) -> Any:
        """The result of one cell (``scenario`` = its row label)."""
        try:
            spec, overrides = self._rows[scenario]
        except KeyError:
            raise KeyError(f"no grid row labelled {scenario!r}") from None
        return self.runs[
            GridCell(
                protocol=protocol, scenario=spec, overrides=overrides, seed=seed
            )
        ]

    def seed_runs(self, protocol: str, scenario: str) -> list[Any]:
        """One (row label, protocol) row: its runs across all seeds."""
        return [
            self.run_for(protocol, scenario, seed) for seed in self.spec.seeds
        ]

    def mean_over_seeds(
        self, protocol: str, scenario: str, metric: Callable[[Any], float]
    ) -> float:
        """Average ``metric(run)`` across the seeds of one row (NaNs skipped)."""
        values = [metric(run) for run in self.seed_runs(protocol, scenario)]
        clean = [v for v in values if not math.isnan(v)]
        return sum(clean) / len(clean) if clean else math.nan


def _note(
    progress: Callable[[str], None] | None,
    done: int,
    total: int,
    cell: GridCell,
) -> None:
    if progress is not None:
        progress(
            f"[{done}/{total}] {cell.label} × {cell.protocol} "
            f"(seed {cell.seed})"
        )


def _run_cell(
    task: tuple[GridCell, SimulationConfig, int, int, bool]
) -> tuple[GridCell, Any]:
    """Execute one grid cell (top-level so worker processes can pickle it)."""
    cell, base_config, max_queries, bucket_width, use_blueprints = task
    config = base_config
    if cell.overrides:
        config = config.replace(**dict(cell.overrides))
    config = config.replace(seed=cell.seed)
    scenario = cell.scenario.make()
    blueprint: NetworkBlueprint | None = None
    if use_blueprints:
        # Key the cache by the *effective* configuration so scenarios
        # that do touch topology (e.g. cold-start's sparser shares)
        # still share one build across the protocols of their row.  In
        # a fork worker this is a pure hit on the parent's prewarmed
        # cache; otherwise the world is built here at most once per
        # fingerprint per process.
        blueprint = _cached_blueprint(scenario.configure(config))
    run = run_protocol(
        config,
        cell.protocol,
        max_queries=max_queries,
        bucket_width=bucket_width,
        scenario=scenario,
        blueprint=blueprint,
    )
    return cell, run


class GridWorkerPool:
    """A persistent worker pool for grid cells, preferring ``fork``.

    Where the platform offers the ``fork`` start method, the pool is
    created *after* ``prebuild`` worlds are built into the process-wide
    :data:`_BLUEPRINT_CACHE`, so every worker inherits the immutable
    substrates — underlay, catalog, pristine overlay — copy-on-write
    at fork time: one build per distinct topology fingerprint in the
    parent, zero builds (and zero pickling of the world) in the
    workers.  The pool then outlives any number of :meth:`imap` rounds,
    which is what lets the claim-aware store loop dispatch batch after
    batch without re-forking.

    Platforms without ``fork`` fall back to the default start method;
    ``prebuild`` is skipped there (a spawned worker re-imports this
    module with an empty cache) and each worker instead builds lazily
    into its own cache, at most once per fingerprint per worker.
    """

    def __init__(
        self,
        workers: int,
        prebuild: Sequence[SimulationConfig] = (),
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        methods = multiprocessing.get_all_start_methods()
        self.start_method: str | None = (
            "fork" if "fork" in methods else None
        )
        self.prebuilt = (
            _BLUEPRINT_CACHE.prewarm(prebuild)
            if self.shares_parent_memory
            else 0
        )
        context = multiprocessing.get_context(self.start_method)
        self._pool = context.Pool(processes=workers)

    @property
    def shares_parent_memory(self) -> bool:
        """Whether workers inherit the parent's blueprint cache (fork)."""
        return self.start_method == "fork"

    def imap(
        self,
        tasks: Sequence[tuple[GridCell, SimulationConfig, int, int, bool]],
        chunksize: int = 1,
    ) -> Iterator[tuple[GridCell, Any]]:
        """Dispatch cell tasks, yielding ``(cell, run)`` as they finish."""
        return self._pool.imap(_run_cell, tasks, chunksize=chunksize)

    def map(self, fn: Callable, items: Sequence[Any]) -> list[Any]:
        """Run an arbitrary picklable function across the workers."""
        return self._pool.map(fn, items)

    def close(self) -> None:
        """Tear the workers down (idempotent).

        Also hands any transient prewarm capacity back to the cache:
        with the workers gone, the parent has no reason to pin more
        worlds than the ordinary LRU bound.
        """
        self._pool.terminate()
        self._pool.join()
        if self.prebuilt:
            _BLUEPRINT_CACHE.restore_capacity()

    def __enter__(self) -> GridWorkerPool:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _capped_prebuild(
    spec: GridSpec, cells: Sequence[GridCell]
) -> list[SimulationConfig]:
    """Up to one cache-capacity's worth of distinct build configs.

    Collected in dispatch order, so the common few-fingerprint grid
    ships every world to the workers at fork time, while a 100-seed
    grid neither serialises 100 builds in the parent (workers idling)
    nor outgrows the cache's fixed memory bound — topologies past the
    cap build lazily per worker, exactly as before the shared
    substrate existed.
    """
    prebuild: list[SimulationConfig] = []
    seen: set[str] = set()
    for cell in cells:
        config = spec.cell_build_config(cell)
        fingerprint = config.topology_fingerprint()
        if fingerprint not in seen:
            seen.add(fingerprint)
            prebuild.append(config)
            if len(prebuild) >= _BLUEPRINT_CACHE.capacity:
                break
    return prebuild


def execute_cells(
    spec: GridSpec,
    cells: Sequence[GridCell],
    workers: int = 1,
    reuse_builds: bool = False,
    progress: Callable[[str], None] | None = None,
    progress_offset: int = 0,
    progress_total: int | None = None,
    pool: GridWorkerPool | None = None,
) -> Iterator[tuple[GridCell, Any]]:
    """Execute ``cells`` and yield ``(cell, run)`` in completion order.

    The one sweep engine: every cell is an isolated, seed-deterministic
    :func:`~repro.experiments.runner.run_protocol` call, so fanning the
    cells over a ``multiprocessing`` pool cannot change any result —
    ``workers=1`` and ``workers=N`` are cell-for-cell identical
    (``tests/test_determinism.py``).  With ``reuse_builds``, up to one
    cache-capacity's worth of distinct topologies is prebuilt in the
    parent and inherited copy-on-write by fork workers; anything past
    that cap (and everything on platforms without fork) builds lazily,
    at most once per fingerprint per worker — results are
    byte-identical either way.

    ``pool`` dispatches through a caller-owned persistent
    :class:`GridWorkerPool` instead of forking a fresh one for this
    call — the claim-aware store loop runs many small batches on one
    pool.  When that pool shares parent memory, cells instantiate the
    blueprints its owner prewarmed rather than rebuilding the world
    per task.

    ``progress_offset`` / ``progress_total`` re-anchor the ``[done/
    total]`` progress prefix when these cells are one batch of a larger
    grid (the claim-aware store loop executes a few cells at a time
    but should still report grid-wide progress).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cells = list(cells)
    use_blueprints = reuse_builds or (
        pool is not None and pool.shares_parent_memory
    )
    if reuse_builds:
        # Cell results are order-independent, so sorting only changes
        # scheduling: one (row, seed) topology per contiguous chunk.
        cells.sort(key=lambda c: (c.label, c.seed, c.protocol))
    tasks = [
        (cell, spec.base_config, spec.max_queries, spec.bucket_width, use_blueprints)
        for cell in cells
    ]
    total = progress_total if progress_total is not None else len(tasks)
    if pool is not None:
        for done, (cell, run) in enumerate(
            pool.imap(tasks), start=1 + progress_offset
        ):
            _note(progress, done, total, cell)
            yield cell, run
        return
    workers = min(workers, len(tasks)) if tasks else 1
    if workers == 1:
        for done, task in enumerate(tasks, start=1 + progress_offset):
            cell, run = _run_cell(task)
            _note(progress, done, total, cell)
            yield cell, run
    else:
        prebuild = _capped_prebuild(spec, cells) if reuse_builds else []
        chunksize = len(spec.protocols) if reuse_builds else 1
        with GridWorkerPool(workers, prebuild=prebuild) as ephemeral:
            for done, (cell, run) in enumerate(
                ephemeral.imap(tasks, chunksize=chunksize),
                start=1 + progress_offset,
            ):
                _note(progress, done, total, cell)
                yield cell, run


class _HeartbeatTicker:
    """Background re-stamper for the claims a runner currently holds.

    Heartbeats used to fire only when a batch mate *completed*, so one
    cell running longer than the lease TTL went silent mid-execution
    and a thief could legally reclaim (and re-execute) it.  This
    daemon thread re-stamps every held claim each ``interval_s`` of
    wall time, so an in-flight claim stays live for exactly as long as
    its runner does — staleness again means death, not slowness.

    :meth:`release` drops the key and releases the claim under the
    same lock the tick loop heartbeats under: a heartbeat landing
    after a release would otherwise recreate the claim file and leak
    it forever.
    """

    def __init__(self, claims: ClaimStore, interval_s: float) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self._claims = claims
        self.interval_s = interval_s
        self._lock = threading.Lock()
        self._held: set[str] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def hold(self, key: str) -> None:
        """Start heartbeating ``key`` (the caller just claimed it)."""
        with self._lock:
            self._held.add(key)

    def release(self, key: str) -> None:
        """Atomically stop heartbeating ``key`` and release its claim."""
        with self._lock:
            self._held.discard(key)
            self._claims.release(key)

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="claim-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            with self._lock:
                for key in tuple(self._held):
                    # A lost claim (stolen after a suspend longer than
                    # the TTL) returns False; execution finishes anyway
                    # — results are deterministic — so just stop
                    # touching the thief's file.
                    if not self._claims.heartbeat(key):
                        self._held.discard(key)


class GridRunner:
    """Run a :class:`GridSpec`, resuming from a result store if given.

    Parameters
    ----------
    spec:
        The grid to run.
    workers / reuse_builds:
        Forwarded to :func:`execute_cells` (process fan-out and
        blueprint reuse).  With a store and ``workers > 1``, claimed
        batches are fanned across one persistent fork
        :class:`GridWorkerPool` whose workers inherit parent-built
        blueprints copy-on-write (see :meth:`_ensure_pool`).
    store:
        Optional :class:`~repro.results.store.ResultStore`.  Cells
        whose key the store already holds are *not executed* — their
        stored document is loaded instead — and every freshly executed
        cell is persisted on completion.  To keep a resumed grid's
        aggregate byte-identical to an uninterrupted one, **all** runs
        in the report (fresh and cached alike) are normalised through
        the document round-trip when a store is attached.

        With a store, every execution is guarded by a lease claim
        (:class:`~repro.results.claims.ClaimStore`), so N runner
        processes pointed at the same store and spec partition the
        grid dynamically with zero duplicate executions: each pending
        cell is **skip** (already stored) → **claim** (exclusive
        create) → **execute** → **commit** (atomic put) → **release**.
        Cells claimed by another live runner are revisited until that
        runner commits them (they land in this report as cached) or
        its lease goes stale (reclaimed and executed here — crash
        recovery of orphaned claims).
    runner_id:
        This runner's identity in claim files (default: host-pid-nonce).
    lease_ttl_s:
        How long this runner's claims stay valid without a heartbeat.
    poll_interval_s:
        Sleep between passes while every remaining cell is claimed by
        other live runners.
    heartbeat_interval_s:
        How often the background ticker re-stamps the claims this
        runner holds *while their cells execute* (default: a quarter
        of the lease TTL), so a single cell outliving the TTL is never
        stolen mid-flight.
    clock:
        Time source for claims (injectable for lease tests).
    profile_dir:
        Optional directory for cProfile artifacts: each executed batch
        dumps ``<runner>-batch<N>.pstats`` there.  With ``workers > 1``
        the profile covers only this parent process (dispatch, document
        serialisation, commits) — the simulations run in pool workers;
        profile with ``workers=1`` to see simulation internals.
    """

    def __init__(
        self,
        spec: GridSpec,
        workers: int = 1,
        reuse_builds: bool = False,
        store: ResultStore | None = None,
        runner_id: str | None = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        poll_interval_s: float = 0.5,
        heartbeat_interval_s: float | None = None,
        clock: Callable[[], float] = time.time,
        profile_dir: str | Path | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if poll_interval_s < 0:
            raise ValueError(
                f"poll_interval_s must be >= 0, got {poll_interval_s}"
            )
        if heartbeat_interval_s is not None and heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be > 0, got {heartbeat_interval_s}"
            )
        self.spec = spec
        self.workers = workers
        self.reuse_builds = reuse_builds
        self.store = store
        self.profile_dir = Path(profile_dir) if profile_dir is not None else None
        self._profiled_batches = 0
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = (
            heartbeat_interval_s
            if heartbeat_interval_s is not None
            else max(lease_ttl_s / 4.0, 0.05)
        )
        self.claims: ClaimStore | None = (
            ClaimStore(
                store.root,
                runner_id=runner_id,
                lease_ttl_s=lease_ttl_s,
                workers=workers,
                clock=clock,
                # Share the store's backend so claims and results live
                # in the same place (same claims/ directory, or the
                # same SQLite database and connection).
                backend=store.backend,
            )
            if store is not None
            else None
        )

    @property
    def runner_id(self) -> str | None:
        """This runner's claim identity (None when storeless)."""
        return self.claims.runner_id if self.claims is not None else None

    def run(
        self, progress: Callable[[str], None] | None = None
    ) -> GridReport:
        """Execute every missing cell and assemble the full report."""
        cells = self.spec.expand()
        report = GridReport(spec=self.spec)
        if self.store is None:
            with self._profiled_batch():
                for cell, run in execute_cells(
                    self.spec,
                    cells,
                    workers=self.workers,
                    reuse_builds=self.reuse_builds,
                    progress=progress,
                ):
                    report.executed += 1
                    report.runs[cell] = run
            return report
        return self._run_with_store(cells, report, progress)

    @contextmanager
    def _profiled_batch(self) -> Iterator[None]:
        """Profile the enclosed batch into ``profile_dir`` (no-op without)."""
        if self.profile_dir is None:
            yield
            return
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            self._profiled_batches += 1
            who = self.runner_id or f"grid-{os.getpid()}"
            self.profile_dir.mkdir(parents=True, exist_ok=True)
            profile.dump_stats(
                self.profile_dir / f"{who}-batch{self._profiled_batches:03d}.pstats"
            )

    def _put_telemetry_sidecar(self, key: str, run: Any) -> None:
        """Persist a freshly executed cell's telemetry next to its document.

        Best-effort by design: the sidecar is operational metadata
        (wall-clock values, runner identity) outside the scientific
        result, so a failed write must never fail the committed cell.
        """
        telemetry = getattr(run, "telemetry", None)
        if telemetry is None:
            return
        sidecar = {
            "kind": "telemetry-sidecar",
            "format_version": 1,
            "key": key,
            "runner_id": self.runner_id,
            "workers": self.workers,
            "completed_unix": time.time(),
            "telemetry": telemetry.to_dict(),
        }
        try:
            self.store.put_sidecar(key, sidecar)
        except (OSError, ValueError):
            pass

    # -- the claim-aware store path ------------------------------------

    def _run_with_store(
        self,
        cells: list[GridCell],
        report: GridReport,
        progress: Callable[[str], None] | None,
    ) -> GridReport:
        """The skip → claim → execute → commit → release loop.

        Each pass walks the still-unresolved cells: stored ones are
        loaded, unclaimed ones are claimed (at most one execution
        batch per pass, so N runners interleave instead of one runner
        pre-claiming the world), and foreign-claimed ones are carried
        to the next pass.  A pass that resolves nothing means every
        remaining cell is claimed by another live runner — sleep
        briefly and look again; their commits arrive as cache hits,
        their crashes as stale leases this runner reclaims.

        Two background resources live for the duration of the loop: a
        :class:`_HeartbeatTicker` keeping every held claim live while
        its cell executes, and (for ``workers > 1``) one persistent
        :class:`GridWorkerPool` that every claimed batch is fanned
        across.
        """
        assert self.claims is not None
        self.store.clean_tmp()
        self.claims.prune(self.store.has)
        payloads = {cell: self.spec.cell_key_payload(cell) for cell in cells}
        keys = {cell: cell_key(payload) for cell, payload in payloads.items()}
        batch_size = self._claim_batch_size()
        pending = list(cells)
        pool: GridWorkerPool | None = None
        ticker = _HeartbeatTicker(self.claims, self.heartbeat_interval_s)
        ticker.start()
        try:
            while pending:
                resolved = 0
                claimed: list[GridCell] = []
                deferred: list[GridCell] = []
                try:
                    for index, cell in enumerate(pending):
                        if len(claimed) >= batch_size:
                            deferred.extend(pending[index:])
                            break
                        if self._load_stored(cell, keys[cell], report, progress):
                            resolved += 1
                        elif self.claims.try_claim(keys[cell]):
                            # Double-check under the claim: another runner
                            # may have committed (and released) this cell
                            # between our store check and the claim.
                            # Holding the claim, a stored document is
                            # final — take the cache hit instead of
                            # executing twice.
                            if self._load_stored(
                                cell, keys[cell], report, progress
                            ):
                                self.claims.release(keys[cell])
                                resolved += 1
                            else:
                                claimed.append(cell)
                                ticker.hold(keys[cell])
                        else:
                            deferred.append(cell)
                    if claimed:
                        # Pool creation builds worlds in the parent —
                        # expensive enough that dying inside it (Ctrl-C,
                        # MemoryError) must release the batch too, so it
                        # shares the claim guard below.
                        pool = self._ensure_pool(pool, claimed)
                except BaseException:
                    # Dying between claiming and executing (disk error,
                    # KeyboardInterrupt) must not strand the claims until
                    # their lease times out on other runners.
                    for cell in claimed:
                        ticker.release(keys[cell])
                    raise
                else:
                    resolved += self._execute_claimed(
                        claimed, payloads, keys, report, progress, pool, ticker
                    )
                pending = deferred
                if pending and not resolved:
                    if progress is not None:
                        progress(
                            f"waiting: {len(pending)} cell(s) claimed by "
                            "other runners"
                        )
                    time.sleep(self.poll_interval_s)
        finally:
            ticker.stop()
            if pool is not None:
                pool.close()
        return report

    def _claim_batch_size(self) -> int:
        """How many cells to claim per pass.

        Small batches = fine-grained dynamic partitioning between
        runners; large batches = better utilisation of this runner's
        persistent pool.  Serial runners claim one cell at a time —
        maximally fair; parallel runners claim a couple of cells per
        worker so no pool worker sits idle between passes.
        """
        return 1 if self.workers == 1 else self.workers * 2

    def _ensure_pool(
        self, pool: GridWorkerPool | None, claimed: list[GridCell]
    ) -> GridWorkerPool | None:
        """The persistent pool for claimed batches, forked on first use.

        Created lazily on the first batch that actually executes (a
        warm store never pays for a pool), after up to one
        cache-capacity's worth of that batch's distinct topologies is
        built into the parent's blueprint cache — fork workers inherit
        those worlds copy-on-write.  The one pool then serves every
        later batch: a topology the workers did not inherit is built
        lazily, at most once per worker, which keeps many-seed grids
        parallel instead of stalling each batch behind serial parent
        builds and a re-fork.
        """
        if self.workers == 1 or pool is not None:
            return pool
        return GridWorkerPool(
            self.workers, prebuild=_capped_prebuild(self.spec, claimed)
        )

    def _load_stored(
        self,
        cell: GridCell,
        key: str,
        report: GridReport,
        progress: Callable[[str], None] | None,
    ) -> bool:
        """Load ``cell`` from the store if present; True on success.

        A corrupt document counts as absent: the store quarantines it,
        the incident is reported, and the caller claims the cell for
        re-execution.
        """
        if not self.store.has(key):
            return False
        try:
            document = self.store.get(key)
            run = load_grid_cell_document(document)
        except CorruptResultError as error:
            report.quarantined += 1
            if progress is not None:
                progress(f"quarantined: {error}")
            return False
        except KeyError:
            # Vanished between has() and get(): a concurrent reader
            # quarantined it, or an operator deleted the cell.  But a
            # KeyError out of the document restore means a valid-JSON
            # object of the wrong shape — quarantine that like any
            # other corruption.
            if not self.store.has(key):
                return False
            return self._quarantine_malformed(key, report, progress)
        except (ValueError, TypeError):
            # Parsed as JSON but not as a grid-cell document (wrong
            # kind, alien format version, mangled fields): same
            # recovery as byte-level corruption — rename it aside and
            # re-execute the cell.
            return self._quarantine_malformed(key, report, progress)
        report.runs[cell] = run
        report.cached += 1
        return True

    def _quarantine_malformed(
        self,
        key: str,
        report: GridReport,
        progress: Callable[[str], None] | None,
    ) -> bool:
        """Quarantine a document that parsed but failed to restore."""
        quarantined_to = self.store.quarantine(key)
        report.quarantined += 1
        if progress is not None:
            where = (
                quarantined_to.name
                if quarantined_to is not None
                else "already removed"
            )
            progress(
                f"quarantined: malformed grid-cell document for key "
                f"{key[:12]}…; {where}"
            )
        return False

    def _execute_claimed(
        self,
        claimed: list[GridCell],
        payloads: dict[GridCell, dict[str, Any]],
        keys: dict[GridCell, str],
        report: GridReport,
        progress: Callable[[str], None] | None,
        pool: GridWorkerPool | None,
        ticker: _HeartbeatTicker,
    ) -> int:
        """Execute the cells this runner holds claims on, commit each.

        Workers (when ``pool`` is given) only simulate: every ``(cell,
        run)`` comes back to this parent process, which alone runs the
        commit protocol — durable ``put`` first, release second — so
        the PR-4 invariants survive ``--workers`` unchanged.  Puts go
        through :meth:`ResultStore.batch` (one fsync per claimed batch
        on the sqlite backend, a no-op on json), and every claim is
        released only *after* the batch context exits — i.e. after its
        cell's document is durably committed on every backend — so a
        crash mid-batch leaves stored-but-claimed cells (cleared by
        the next runner's :meth:`ClaimStore.prune`), never
        released-but-unstored ones.  The ``ticker`` keeps every
        still-running claim live in the background, so neither a long
        batch nor a single long cell can go stale mid-flight.
        """
        held = {keys[cell] for cell in claimed}
        committed: list[str] = []
        done = 0
        try:
            with self._profiled_batch():
                with self.store.batch():
                    for cell, run in execute_cells(
                        self.spec,
                        claimed,
                        workers=self.workers,
                        reuse_builds=self.reuse_builds,
                        progress=progress,
                        progress_offset=report.executed + report.cached,
                        progress_total=self.spec.num_cells,
                        pool=pool,
                    ):
                        key = keys[cell]
                        document = grid_cell_to_document(
                            cell,
                            run,
                            key=key,
                            max_queries=self.spec.max_queries,
                            bucket_width=self.spec.bucket_width,
                            topology_fingerprint=payloads[cell][
                                "topology_fingerprint"
                            ],
                        )
                        self.store.put(key, document)
                        self._put_telemetry_sidecar(key, run)
                        committed.append(key)
                        report.runs[cell] = load_grid_cell_document(document)
                        report.executed += 1
                        done += 1
            # The batch is durable: now (and only now) stop
            # heartbeating and hand the finished cells back.
            for key in committed:
                ticker.release(key)
                held.discard(key)
        finally:
            # Interrupted mid-batch (exception, KeyboardInterrupt):
            # buffered puts were still flushed by ``batch()`` on the
            # way out, so every key in ``held`` is either committed or
            # never executed — drop the claims we still hold so a
            # surviving runner can take the cells immediately instead
            # of after a stale TTL.
            for key in held:
                ticker.release(key)
        return done
