"""Multi-seed robustness of the paper's claims.

A reproduction that passes on one lucky seed proves little.  This
module re-runs the four-protocol comparison across several master
seeds and reports, per §5.2 claim, how often it holds — plus the
spread of the headline quantities (traffic reduction, distance
reduction, success-rate ordering margins).

The seeds × protocols grid is executed by the one sweep engine
(:func:`repro.experiments.grid.execute_cells`) as a one-scenario
:class:`~repro.experiments.grid.GridSpec` — the legacy serial
``run_comparison``-per-seed loop is gone — with per-seed blueprint
reuse, so all four protocols of a seed share one topology build
exactly as ``run_comparison`` does.

Used by ``python -m repro seed-sweep`` and the claim-robustness test.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..analysis.comparison import check_paper_claims, relative_change
from ..analysis.tables import format_percent, format_table
from ..sim.config import SimulationConfig
from .grid import GridSpec, execute_cells
from .runner import DEFAULT_PROTOCOL_ORDER, ProtocolRun
from .setup import paper_config

__all__ = ["SeedSweepResult", "run_seed_sweep"]


@dataclass
class SeedSweepResult:
    """Claim pass-rates and headline spreads across seeds."""

    seeds: list[int]
    max_queries: int
    claim_passes: dict[str, int] = field(default_factory=dict)
    traffic_reductions: list[float] = field(default_factory=list)
    distance_reductions: list[float] = field(default_factory=list)
    locaware_vs_dicas: list[float] = field(default_factory=list)
    locaware_vs_dicas_keys: list[float] = field(default_factory=list)

    @property
    def num_seeds(self) -> int:
        """How many seeds were swept."""
        return len(self.seeds)

    def pass_rate(self, claim: str) -> float:
        """Fraction of seeds on which ``claim`` held."""
        if not self.seeds:
            return math.nan
        return self.claim_passes.get(claim, 0) / len(self.seeds)

    def all_claims_always_hold(self) -> bool:
        """Whether every claim passed on every seed."""
        return all(
            passes == len(self.seeds) for passes in self.claim_passes.values()
        )

    def render(self) -> str:
        """Human-readable sweep report."""
        rows = [
            [claim, f"{passes}/{len(self.seeds)}"]
            for claim, passes in self.claim_passes.items()
        ]
        header = format_table(
            ["claim", "holds"],
            rows,
            title=(
                f"Claim robustness over {len(self.seeds)} seeds "
                f"({self.max_queries} queries each)"
            ),
        )
        spreads = format_table(
            ["quantity", "min", "mean", "max"],
            [
                _spread_row("traffic reduction vs flooding", self.traffic_reductions),
                _spread_row("distance reduction vs flooding", self.distance_reductions),
                _spread_row("locaware vs dicas success", self.locaware_vs_dicas),
                _spread_row(
                    "locaware vs dicas-keys success", self.locaware_vs_dicas_keys
                ),
            ],
        )
        return f"{header}\n\n{spreads}"


def _spread_row(label: str, values: Sequence[float]) -> list[object]:
    clean = [v for v in values if not math.isnan(v)]
    if not clean:
        return [label, "n/a", "n/a", "n/a"]
    return [
        label,
        format_percent(min(clean)),
        format_percent(sum(clean) / len(clean)),
        format_percent(max(clean)),
    ]


def run_seed_sweep(
    seeds: Sequence[int],
    base: SimulationConfig | None = None,
    max_queries: int = 1000,
    bucket_width: int | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
) -> SeedSweepResult:
    """Run the four-way comparison per seed and tally the claim checks.

    The seeds × protocols grid runs through the shared sweep engine
    with blueprint reuse (one topology build per seed, shared across
    the four protocols); ``workers`` fans the cells over processes —
    results are identical at any worker count.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    base = base if base is not None else paper_config()
    width = bucket_width if bucket_width is not None else max(1, max_queries // 8)
    spec = GridSpec(
        base_config=base,
        protocols=DEFAULT_PROTOCOL_ORDER,
        scenarios=("baseline",),
        seeds=seeds,
        max_queries=max_queries,
        bucket_width=width,
    )
    runs: dict[tuple[str, int], ProtocolRun] = {}
    announced: set[int] = set()
    for cell, run in execute_cells(spec, spec.expand(), workers=workers,
                                   reuse_builds=True):
        if progress is not None and cell.seed not in announced:
            announced.add(cell.seed)
            progress(f"seed {cell.seed}...")
        runs[(cell.protocol, cell.seed)] = run

    sweep = SeedSweepResult(seeds=list(seeds), max_queries=max_queries)
    for seed in seeds:
        summaries = {
            name: runs[(name, seed)].summary for name in DEFAULT_PROTOCOL_ORDER
        }
        series = {
            name: runs[(name, seed)].series for name in DEFAULT_PROTOCOL_ORDER
        }
        checks = check_paper_claims(summaries, series)
        for check in checks:
            sweep.claim_passes.setdefault(check.claim, 0)
            if check.holds:
                sweep.claim_passes[check.claim] += 1
        flooding = summaries["flooding"]
        locaware = summaries["locaware"]
        sweep.traffic_reductions.append(
            -relative_change(locaware.mean_messages, flooding.mean_messages)
        )
        sweep.distance_reductions.append(
            -relative_change(
                locaware.mean_download_distance_ms,
                flooding.mean_download_distance_ms,
            )
        )
        sweep.locaware_vs_dicas.append(
            relative_change(locaware.success_rate, summaries["dicas"].success_rate)
        )
        sweep.locaware_vs_dicas_keys.append(
            relative_change(
                locaware.success_rate, summaries["dicas-keys"].success_rate
            )
        )
    return sweep
