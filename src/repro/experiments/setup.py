"""Experiment configurations.

Three presets:

- :func:`paper_config` — the exact §5.1 parameters (1000 peers, 3000
  files, 0.00083 q/s/peer, TTL 7, 4 landmarks, 50-filename caches,
  1200-bit filters);
- :func:`bench_config` — the same *system* at a reduced query volume,
  sized so the full four-protocol comparison regenerates on a laptop in
  minutes (flooding at 1000 peers costs thousands of messages per
  query; the bucketed trends stabilise well before the paper's full
  horizon);
- :func:`small_config` — miniature population for unit/integration
  tests (milliseconds per run).

The defaults of :class:`~repro.sim.config.SimulationConfig` *are* the
paper's; these helpers only exist to make intent explicit at call
sites and to centralise the scaled-down variants.
"""

from __future__ import annotations

from ..sim.config import SimulationConfig

__all__ = [
    "paper_config",
    "bench_config",
    "small_config",
    "DEFAULT_MAX_QUERIES",
    "DEFAULT_BUCKET_WIDTH",
    "BENCH_MAX_QUERIES",
    "BENCH_BUCKET_WIDTH",
]

#: Query horizon for a full paper-scale run.
DEFAULT_MAX_QUERIES = 2000
#: Figure bucket width for a full paper-scale run.
DEFAULT_BUCKET_WIDTH = 200

#: Query horizon used by the benchmark harness.
BENCH_MAX_QUERIES = 1500
#: Figure bucket width used by the benchmark harness.
BENCH_BUCKET_WIDTH = 250


def paper_config(seed: int = 20090322) -> SimulationConfig:
    """The exact §5.1 configuration."""
    return SimulationConfig(seed=seed)


def bench_config(seed: int = 20090322) -> SimulationConfig:
    """The paper's exact configuration — benches run it as-is.

    Simulation wall time is governed by the *event count* (dominated by
    flooding's per-query fan-out), not by virtual time, so there is no
    reason to distort the paper's query rate; benches simply run a
    shorter query horizon (``BENCH_MAX_QUERIES``).
    """
    return SimulationConfig(seed=seed)


def small_config(seed: int = 7) -> SimulationConfig:
    """Miniature system for fast tests (60 peers, 180 files)."""
    return SimulationConfig.small(seed=seed)
