"""Figure 3 — comparison of search traffic.

"The search traffic ... can be measured as the total number of
messages produced by a query in the P2P network" (§5.2).  The paper
reports Locaware (like Dicas) ≈98% below flooding: index caching's
whole point is to answer queries without blind propagation.
"""

from __future__ import annotations


from ..analysis.collectors import MetricSeries
from ..analysis.tables import format_series_table
from ..sim.metrics import BucketedSeries
from .runner import ComparisonResult

EXPERIMENT_ID = "fig3"
TITLE = "Figure 3: Comparison of search traffic"
Y_LABEL = "mean messages per query"

__all__ = ["EXPERIMENT_ID", "TITLE", "Y_LABEL", "extract", "figure_series", "render"]


def extract(series: MetricSeries) -> BucketedSeries:
    """The figure's y-series for one protocol run."""
    return series.search_traffic


def figure_series(result: ComparisonResult) -> dict[str, list[float]]:
    """Windowed per-bucket means for every protocol (the plotted lines)."""
    return {
        name: extract(run.series).windowed_means()
        for name, run in result.runs.items()
    }


def render(result: ComparisonResult) -> str:
    """The figure as an ASCII table (x = #queries)."""
    return format_series_table(
        x_label="#queries",
        x_values=result.bucket_edges(),
        series=figure_series(result),
        title=f"{TITLE} [{Y_LABEL}]",
    )
