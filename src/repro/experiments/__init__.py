"""Experiment drivers: §5.1 setup, figure reproductions, ablations."""

from . import ablations, fig2_download_distance, fig3_search_traffic, fig4_success_rate
from .grid import (
    GridCell,
    GridReport,
    GridRunner,
    GridSpec,
    GridWorkerPool,
    NonFiniteValueError,
    ScenarioSpec,
    execute_cells,
)
from .robustness import SeedSweepResult, run_seed_sweep
from .runner import (
    DEFAULT_PROTOCOL_ORDER,
    PROTOCOL_REGISTRY,
    ComparisonResult,
    ProtocolRun,
    make_protocol,
    run_comparison,
    run_protocol,
)
from .setup import (
    BENCH_BUCKET_WIDTH,
    BENCH_MAX_QUERIES,
    DEFAULT_BUCKET_WIDTH,
    DEFAULT_MAX_QUERIES,
    bench_config,
    paper_config,
    small_config,
)
from .sweep import SweepCell, SweepReport, SweepRunner

__all__ = [
    "paper_config",
    "bench_config",
    "small_config",
    "DEFAULT_MAX_QUERIES",
    "DEFAULT_BUCKET_WIDTH",
    "BENCH_MAX_QUERIES",
    "BENCH_BUCKET_WIDTH",
    "PROTOCOL_REGISTRY",
    "DEFAULT_PROTOCOL_ORDER",
    "ProtocolRun",
    "ComparisonResult",
    "run_protocol",
    "run_comparison",
    "make_protocol",
    "fig2_download_distance",
    "fig3_search_traffic",
    "fig4_success_rate",
    "ablations",
    "SeedSweepResult",
    "run_seed_sweep",
    "SweepCell",
    "SweepReport",
    "SweepRunner",
    "ScenarioSpec",
    "GridCell",
    "GridSpec",
    "GridReport",
    "GridRunner",
    "GridWorkerPool",
    "NonFiniteValueError",
    "execute_cells",
]
