"""Ablation experiments (DESIGN.md A1-A7 + the §6 extension).

Each ablation sweeps one design parameter the paper discusses and
reports how the headline metrics move.  They all reuse the same
runner as the figures, so results are directly comparable.

- A1 ``ablate_landmarks`` — §5.1's landmark-count discussion (4
  landmarks → 24 locIds vs 5 → 120: too many localities scatter peers
  and locId matches vanish);
- A2 ``ablate_bloom_size`` — §5.1's "1200 bits is an optimal
  representation" sizing argument (too small → false positives
  mislead routing; larger → no routing benefit, more update bits);
- A3 ``ablate_cache_capacity`` — §4.1.2's storage-control knob; also
  the regime where Dicas-Keys' duplicated indexes visibly pollute;
- A4 ``ablate_ttl`` — the §5.1 TTL bound: scope vs traffic;
- A5 ``ablate_churn`` — §3.1 dynamicity/staleness: Locaware's
  multi-provider entries vs Dicas' single pointer;
- A6 ``measure_bloom_overhead`` — §4.2 footnote: update messages must
  stay within ~0.132 Kb;
- A7 ``ablate_group_count`` — the Dicas M parameter: cache
  concentration vs routing reachability;
- EXT ``ablate_locaware_routing`` — §6 future work: location-aware
  *query routing* on top of Locaware.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from ..analysis.tables import format_table
from ..sim.config import SimulationConfig
from .runner import ProtocolRun, run_protocol
from .setup import paper_config

__all__ = [
    "AblationResult",
    "ablate_landmarks",
    "ablate_bloom_size",
    "ablate_cache_capacity",
    "ablate_ttl",
    "ablate_churn",
    "measure_bloom_overhead",
    "ablate_group_count",
    "ablate_locaware_routing",
    "ablate_popularity_shift",
    "ablate_substrate",
]


@dataclass
class AblationResult:
    """A sweep's rows, ready to render as the bench's output table."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def render(self) -> str:
        """The ablation as an ASCII table."""
        return format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")

    def column(self, header: str) -> list[Any]:
        """All values of one column (for assertions in benches/tests)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def _run(
    config: SimulationConfig,
    protocol: str,
    max_queries: int,
    location_aware_routing: bool = False,
) -> ProtocolRun:
    return run_protocol(
        config,
        protocol,
        max_queries=max_queries,
        bucket_width=max(1, max_queries // 4),
        location_aware_routing=location_aware_routing,
    )


def ablate_landmarks(
    base: SimulationConfig | None = None,
    max_queries: int = 400,
    counts: Sequence[int] = (2, 3, 4, 5),
) -> AblationResult:
    """A1 — number of landmarks (locId granularity)."""
    base = base if base is not None else paper_config()
    result = AblationResult(
        "A1",
        "landmark count (locId granularity, §5.1 discussion)",
        ["landmarks", "locIds", "peers/locId", "locId matches", "success", "distance_ms"],
    )
    for count in counts:
        config = base.replace(num_landmarks=count)
        run = _run(config, "locaware", max_queries)
        snapshot = run.metric_snapshot
        from ..net.underlay import Underlay  # local import to avoid cycles
        from ..sim.rng import RandomStreams

        underlay = Underlay.build(
            config.num_peers,
            RandomStreams(config.seed).stream("underlay"),
            num_landmarks=count,
        )
        result.rows.append(
            [
                count,
                math.factorial(count),
                round(underlay.mean_peers_per_locid(), 1),
                int(snapshot.get("counter.selection.locid_match", 0)),
                run.summary.success_rate,
                run.summary.mean_download_distance_ms,
            ]
        )
    return result


def ablate_bloom_size(
    base: SimulationConfig | None = None,
    max_queries: int = 400,
    sizes: Sequence[int] = (150, 300, 600, 1200, 2400),
) -> AblationResult:
    """A2 — Bloom filter size (routing accuracy vs update cost)."""
    base = base if base is not None else paper_config()
    result = AblationResult(
        "A2",
        "Bloom filter size (§5.1: 1200 bits for ~150 keywords)",
        ["bits", "est_fpr", "bf matches", "success", "msgs/query", "update_bits"],
    )
    from ..bloom.params import false_positive_rate

    expected_keywords = base.index_capacity * base.keywords_per_file
    for bits in sizes:
        config = base.replace(bloom_bits=bits)
        run = _run(config, "locaware", max_queries)
        snapshot = run.metric_snapshot
        result.rows.append(
            [
                bits,
                round(false_positive_rate(bits, config.bloom_hashes, expected_keywords), 4),
                int(snapshot.get("counter.routing.bf_match", 0)),
                run.summary.success_rate,
                run.summary.mean_messages,
                round(snapshot.get("summary.bloom.update_bits.mean", math.nan), 1),
            ]
        )
    return result


def ablate_cache_capacity(
    base: SimulationConfig | None = None,
    max_queries: int = 400,
    capacities: Sequence[int] = (2, 5, 10, 25, 50),
    protocols: Sequence[str] = ("dicas", "dicas-keys", "locaware"),
) -> AblationResult:
    """A3 — response-index capacity (§4.1.2 storage control)."""
    base = base if base is not None else paper_config()
    result = AblationResult(
        "A3",
        "response-index capacity (cache pressure; Dicas-Keys duplication)",
        ["capacity"] + [f"{p} success" for p in protocols],
    )
    for capacity in capacities:
        config = base.replace(index_capacity=capacity)
        row: list[Any] = [capacity]
        for protocol in protocols:
            run = _run(config, protocol, max_queries)
            row.append(run.summary.success_rate)
        result.rows.append(row)
    return result


def ablate_ttl(
    base: SimulationConfig | None = None,
    max_queries: int = 300,
    ttls: Sequence[int] = (3, 5, 7, 9),
    protocols: Sequence[str] = ("flooding", "locaware"),
) -> AblationResult:
    """A4 — TTL bound: search scope vs traffic."""
    base = base if base is not None else paper_config()
    headers = ["ttl"]
    for protocol in protocols:
        headers += [f"{protocol} success", f"{protocol} msgs"]
    result = AblationResult("A4", "TTL bound (scope vs traffic)", headers)
    for ttl in ttls:
        config = base.replace(ttl=ttl)
        row: list[Any] = [ttl]
        for protocol in protocols:
            run = _run(config, protocol, max_queries)
            row += [run.summary.success_rate, run.summary.mean_messages]
        result.rows.append(row)
    return result


def ablate_churn(
    base: SimulationConfig | None = None,
    max_queries: int = 400,
    mean_sessions: Sequence[float | None] = (None, 3600.0, 1200.0, 600.0),
    protocols: Sequence[str] = ("dicas", "locaware"),
) -> AblationResult:
    """A5 — churn: stale single-provider pointers vs multi-provider entries.

    ``None`` in ``mean_sessions`` means churn disabled.
    """
    base = base if base is not None else paper_config()
    headers = ["mean_session_s"] + [f"{p} success" for p in protocols]
    result = AblationResult(
        "A5", "churn (index staleness; §4.1.2 motivation)", headers
    )
    for session in mean_sessions:
        if session is None:
            config = base.replace(churn_enabled=False)
            label: Any = "off"
        else:
            config = base.replace(
                churn_enabled=True,
                mean_session_s=session,
                mean_downtime_s=session / 4.0,
            )
            label = session
        row: list[Any] = [label]
        for protocol in protocols:
            run = _run(config, protocol, max_queries)
            row.append(run.summary.success_rate)
        result.rows.append(row)
    return result


def measure_bloom_overhead(
    base: SimulationConfig | None = None,
    max_queries: int = 400,
) -> AblationResult:
    """A6 — §4.2 footnote: a BF update is at most 12 × 11 = 132 bits."""
    base = base if base is not None else paper_config()
    run = _run(base, "locaware", max_queries)
    snapshot = run.metric_snapshot
    mean_bits = snapshot.get("summary.bloom.update_bits.mean", math.nan)
    update_count = snapshot.get("summary.bloom.update_bits.count", 0.0)
    messages = snapshot.get("counter.messages.bloom_update", 0.0)
    search_messages = snapshot.get("counter.messages.query", 0.0) + snapshot.get(
        "counter.messages.response", 0.0
    )
    result = AblationResult(
        "A6",
        "Bloom update overhead (§4.2 footnote: I = 132 bits per update)",
        ["quantity", "value"],
    )
    result.rows = [
        ["bloom update pushes", int(update_count)],
        ["bloom update messages", int(messages)],
        ["mean update size (bits)", round(mean_bits, 1) if not math.isnan(mean_bits) else math.nan],
        ["paper bound (bits)", 132],
        ["search messages (for scale)", int(search_messages)],
        ["bloom/search message ratio", round(messages / search_messages, 3) if search_messages else math.nan],
    ]
    return result


def ablate_group_count(
    base: SimulationConfig | None = None,
    max_queries: int = 400,
    group_counts: Sequence[int] = (2, 4, 8, 16),
    protocols: Sequence[str] = ("dicas", "locaware"),
) -> AblationResult:
    """A7 — group modulus M: concentration vs reachability."""
    base = base if base is not None else paper_config()
    headers = ["M"]
    for protocol in protocols:
        headers += [f"{protocol} success", f"{protocol} msgs"]
    result = AblationResult("A7", "group count M (Dicas parameter)", headers)
    for m in group_counts:
        config = base.replace(group_count=m)
        row: list[Any] = [m]
        for protocol in protocols:
            run = _run(config, protocol, max_queries)
            row += [run.summary.success_rate, run.summary.mean_messages]
        result.rows.append(row)
    return result


def ablate_substrate(
    base: SimulationConfig | None = None,
    max_queries: int = 400,
    protocols: Sequence[str] = ("flooding", "locaware"),
) -> AblationResult:
    """A8 — substrate sensitivity (DESIGN.md substitution audit).

    The reproduction replaces BRITE with a metric-space latency model
    and clusters peer placement.  This sweep re-runs the headline
    protocols on every combination of latency model (Euclidean vs
    Waxman router-level) and placement (clustered vs uniform) to check
    that the paper's *shape* — Locaware's distance advantage at a
    fraction of flooding's traffic — does not hinge on the substitution.
    """
    base = base if base is not None else paper_config()
    headers = ["substrate"]
    for protocol in protocols:
        headers += [f"{protocol} success", f"{protocol} dist_ms", f"{protocol} msgs"]
    result = AblationResult(
        "A8", "substrate sensitivity (latency model x placement)", headers
    )
    combos = [
        ("euclidean/clustered", "euclidean", "clustered"),
        ("euclidean/uniform", "euclidean", "uniform"),
        ("router/clustered", "router", "clustered"),
        ("router/uniform", "router", "uniform"),
    ]
    for label, model, placement in combos:
        config = base.replace(latency_model=model, peer_placement=placement)
        row: list[Any] = [label]
        for protocol in protocols:
            run = _run(config, protocol, max_queries)
            row += [
                run.summary.success_rate,
                run.summary.mean_download_distance_ms,
                run.summary.mean_messages,
            ]
        result.rows.append(row)
    return result


def ablate_popularity_shift(
    base: SimulationConfig | None = None,
    max_queries: int = 400,
    shift_intervals: Sequence[float | None] = (None, 1200.0, 300.0),
    protocols: Sequence[str] = ("dicas", "locaware"),
) -> AblationResult:
    """EXT2 — popularity drift (temporal-locality stress).

    Re-draws the Zipf rank assignment every ``interval`` virtual
    seconds (``None`` = stationary).  Index caches chase a moving
    popular set; §4.1.2's recency-based replacement is the mechanism
    that lets them keep up.
    """
    base = base if base is not None else paper_config()
    headers = ["shift_interval_s"] + [f"{p} success" for p in protocols]
    result = AblationResult(
        "EXT2", "popularity drift (shifting Zipf workload)", headers
    )
    for interval in shift_intervals:
        row: list[Any] = ["stationary" if interval is None else interval]
        for protocol in protocols:
            run = run_protocol(
                base,
                protocol,
                max_queries=max_queries,
                bucket_width=max(1, max_queries // 4),
                popularity_shift_s=interval,
            )
            row.append(run.summary.success_rate)
        result.rows.append(row)
    return result


def ablate_locaware_routing(
    base: SimulationConfig | None = None,
    max_queries: int = 400,
) -> AblationResult:
    """EXT — §6 future work: location-aware query routing.

    Compares stock Locaware against the variant that biases equally
    eligible next hops towards the requestor's locality.
    """
    base = base if base is not None else paper_config()
    result = AblationResult(
        "EXT",
        "location-aware query routing (§6 future work)",
        ["variant", "success", "distance_ms", "msgs/query", "locId matches"],
    )
    for label, flag in (("locaware", False), ("locaware+locrouting", True)):
        run = _run(base, "locaware", max_queries, location_aware_routing=flag)
        snapshot = run.metric_snapshot
        result.rows.append(
            [
                label,
                run.summary.success_rate,
                run.summary.mean_download_distance_ms,
                run.summary.mean_messages,
                int(snapshot.get("counter.selection.locid_match", 0)),
            ]
        )
    return result
