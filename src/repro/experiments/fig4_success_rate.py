"""Figure 4 — comparison of success rate.

"We measure how much Locaware looses in terms of success rate, i.e.,
the rate of queries successfully satisfied to all submitted queries"
(§5.2).  Expected shape: flooding wins (maximal scope); Locaware
substantially compensates over Dicas (+23%) and Dicas-Keys (+33%)
thanks to multi-provider indexes and real keyword support.
"""

from __future__ import annotations


from ..analysis.collectors import MetricSeries
from ..analysis.tables import format_series_table
from ..sim.metrics import BucketedSeries
from .runner import ComparisonResult

EXPERIMENT_ID = "fig4"
TITLE = "Figure 4: Comparison of success rate"
Y_LABEL = "success rate (fraction of submitted queries satisfied)"

__all__ = ["EXPERIMENT_ID", "TITLE", "Y_LABEL", "extract", "figure_series", "render"]


def extract(series: MetricSeries) -> BucketedSeries:
    """The figure's y-series for one protocol run."""
    return series.success_rate


def figure_series(result: ComparisonResult) -> dict[str, list[float]]:
    """Windowed per-bucket success rates for every protocol."""
    return {
        name: extract(run.series).windowed_means()
        for name, run in result.runs.items()
    }


def render(result: ComparisonResult) -> str:
    """The figure as an ASCII table (x = #queries)."""
    return format_series_table(
        x_label="#queries",
        x_values=result.bucket_edges(),
        series=figure_series(result),
        title=f"{TITLE} [{Y_LABEL}]",
    )
