"""Figure 2 — comparison of download distance.

"We measure the download distance, i.e., the average network distance,
in terms of latency, from the requestor peer to the chosen provider
peer" (§5.2).  The paper reports Locaware ≈14% below the baselines,
*improving* with query count (replication puts providers in more
localities), while the other approaches stay flat.

:func:`extract` pulls the distance series from a run;
:func:`figure_series` assembles the multi-protocol table the benchmark
prints; :func:`render` formats it.
"""

from __future__ import annotations


from ..analysis.collectors import MetricSeries
from ..analysis.tables import format_series_table
from ..sim.metrics import BucketedSeries
from .runner import ComparisonResult

EXPERIMENT_ID = "fig2"
TITLE = "Figure 2: Comparison of download distance"
Y_LABEL = "mean download distance (ms RTT)"

__all__ = ["EXPERIMENT_ID", "TITLE", "Y_LABEL", "extract", "figure_series", "render"]


def extract(series: MetricSeries) -> BucketedSeries:
    """The figure's y-series for one protocol run."""
    return series.download_distance


def figure_series(result: ComparisonResult) -> dict[str, list[float]]:
    """Windowed per-bucket means for every protocol (the plotted lines).

    Windowed (not cumulative) means expose the *trend*: Locaware's
    improvement with accumulating queries is §5.2's key observation.
    """
    return {
        name: extract(run.series).windowed_means()
        for name, run in result.runs.items()
    }


def render(result: ComparisonResult) -> str:
    """The figure as an ASCII table (x = #queries)."""
    return format_series_table(
        x_label="#queries",
        x_values=result.bucket_edges(),
        series=figure_series(result),
        title=f"{TITLE} [{Y_LABEL}]",
    )
