"""Latency models mapping peer placement to link latencies.

The paper (§5.1) generates "an underlying topology of peers connected
with links of variable latencies; the model inspired by BRITE assigns
latencies between 10 and 500 ms".  Two models implement that contract:

- :class:`EuclideanLatencyModel` — one-way latency is an affine
  function of the distance between the two endpoints' coordinates,
  scaled into ``[min_latency, max_latency]``.  Fast (O(1) per query),
  respects the triangle inequality, and geographically coherent, which
  is exactly what landmark clustering (§4.1.1) needs.  This is the
  default model.

- :class:`RouterLevelLatencyModel` — a Waxman random graph over router
  nodes (the actual BRITE flat-router model) with per-edge latencies
  from edge length; peer-to-peer latency is the shortest-path latency
  through the router network.  Closer to BRITE's output, but O(V·E)
  to precompute; useful for validating that results do not depend on
  the metric-space simplification.

Latencies are returned in **milliseconds** and are *one-way*; RTTs are
twice the one-way latency (symmetric links).
"""

from __future__ import annotations

import heapq
import math
import random
from array import array
from collections.abc import Callable, Sequence

from .coordinates import UNIT_SQUARE_DIAMETER, Point

__all__ = ["LatencyModel", "EuclideanLatencyModel", "RouterLevelLatencyModel"]

#: Fast pairwise latency over peer *indices*, produced by ``bind``.
PairLatency = Callable[[int, int], float]


class LatencyModel:
    """Interface: one-way latency in milliseconds between two points."""

    def latency_ms(self, a: Point, b: Point) -> float:
        """One-way latency between positions ``a`` and ``b``."""
        raise NotImplementedError

    def rtt_ms(self, a: Point, b: Point) -> float:
        """Round-trip time between ``a`` and ``b`` (symmetric links)."""
        return 2.0 * self.latency_ms(a, b)

    def bind(self, positions: Sequence[Point]) -> PairLatency:
        """A fast ``(peer_a, peer_b) -> latency_ms`` closure for a fixed
        peer placement.

        This is the per-message hot path: models override it to hoist
        whatever per-call work can be precomputed for a static underlay
        (coordinate unpacking, nearest-router attachment).  Every
        override must return *bit-identical* floats to
        ``latency_ms(positions[a], positions[b])`` — the substrate-
        equivalence suite holds them to that.
        """
        frozen = list(positions)
        latency_ms = self.latency_ms

        def pair_latency(a: int, b: int) -> float:
            return latency_ms(frozen[a], frozen[b])

        return pair_latency


class EuclideanLatencyModel(LatencyModel):
    """Distance-proportional latencies in ``[min_latency, max_latency]``.

    ``latency(a, b) = min + (max - min) * distance(a, b) / diameter``

    Identical positions get the minimum latency (two peers in the same
    campus still cross a 10 ms access link); antipodal corners get the
    maximum.
    """

    def __init__(self, min_latency_ms: float = 10.0, max_latency_ms: float = 500.0) -> None:
        if min_latency_ms <= 0:
            raise ValueError(f"min_latency_ms must be positive, got {min_latency_ms}")
        if max_latency_ms < min_latency_ms:
            raise ValueError(
                f"max_latency_ms ({max_latency_ms}) must be >= min_latency_ms ({min_latency_ms})"
            )
        self.min_latency_ms = min_latency_ms
        self.max_latency_ms = max_latency_ms
        self._span = max_latency_ms - min_latency_ms

    def latency_ms(self, a: Point, b: Point) -> float:
        distance = a.distance_to(b)
        return self.min_latency_ms + self._span * (distance / UNIT_SQUARE_DIAMETER)

    def bind(self, positions: Sequence[Point]) -> PairLatency:
        # Flat coordinate arrays kill the per-call Point attribute
        # chasing; the arithmetic is the exact scalar expression of
        # latency_ms (hypot + affine), so the floats are bit-identical.
        xs = array("d", (p.x for p in positions))
        ys = array("d", (p.y for p in positions))
        min_latency = self.min_latency_ms
        span = self._span
        hypot = math.hypot

        def pair_latency(a: int, b: int) -> float:
            return min_latency + span * (
                hypot(xs[a] - xs[b], ys[a] - ys[b]) / UNIT_SQUARE_DIAMETER
            )

        return pair_latency


class RouterLevelLatencyModel(LatencyModel):
    """BRITE-style flat-router Waxman graph with shortest-path latencies.

    ``num_routers`` routers are placed uniformly in the unit square and
    joined by a Waxman random graph: routers ``u, v`` are linked with
    probability ``alpha * exp(-d(u, v) / (beta * L))`` where ``L`` is
    the plane diameter.  Extra edges are added if needed to make the
    graph connected.  Each edge's latency is the Euclidean model's
    latency for its endpoints, scaled so that typical *end-to-end*
    shortest paths span the requested ``[min, max]`` range.

    A peer attaches to its nearest router (plus a last-mile latency for
    the access link), and peer-to-peer latency is last-mile + shortest
    router path + last-mile.

    All-pairs router distances are precomputed with Dijkstra per router
    (O(R · E log R)); keep ``num_routers`` modest (the default 64 is
    plenty for 1000 peers).
    """

    def __init__(
        self,
        rng: random.Random,
        num_routers: int = 64,
        alpha: float = 0.4,
        beta: float = 0.35,
        min_latency_ms: float = 10.0,
        max_latency_ms: float = 500.0,
        last_mile_ms: float = 5.0,
    ) -> None:
        if num_routers < 2:
            raise ValueError(f"num_routers must be >= 2, got {num_routers}")
        if not (0 < alpha <= 1):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if min_latency_ms <= 0 or max_latency_ms < min_latency_ms:
            raise ValueError("latency bounds must satisfy 0 < min <= max")
        self.min_latency_ms = min_latency_ms
        self.max_latency_ms = max_latency_ms
        self.last_mile_ms = last_mile_ms
        self._routers = [Point(rng.random(), rng.random()) for _ in range(num_routers)]
        edges = self._waxman_edges(rng, alpha, beta)
        self._adjacency = self._build_adjacency(num_routers, edges)
        self._ensure_connected(rng)
        self._dist = self._all_pairs_shortest_paths()
        self._rescale_distances()

    # -- graph construction ----------------------------------------------

    def _waxman_edges(
        self, rng: random.Random, alpha: float, beta: float
    ) -> list[tuple[int, int, float]]:
        edges: list[tuple[int, int, float]] = []
        n = len(self._routers)
        for i in range(n):
            for j in range(i + 1, n):
                d = self._routers[i].distance_to(self._routers[j])
                p = alpha * math.exp(-d / (beta * UNIT_SQUARE_DIAMETER))
                if rng.random() < p:
                    edges.append((i, j, d))
        return edges

    @staticmethod
    def _build_adjacency(
        n: int, edges: list[tuple[int, int, float]]
    ) -> list[list[tuple[int, float]]]:
        adjacency: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for i, j, d in edges:
            adjacency[i].append((j, d))
            adjacency[j].append((i, d))
        return adjacency

    def _ensure_connected(self, rng: random.Random) -> None:
        """Join disconnected components with their closest router pairs."""
        n = len(self._routers)
        component = [-1] * n
        comp_id = 0
        for start in range(n):
            if component[start] != -1:
                continue
            stack = [start]
            component[start] = comp_id
            while stack:
                u = stack.pop()
                for v, _d in self._adjacency[u]:
                    if component[v] == -1:
                        component[v] = comp_id
                        stack.append(v)
            comp_id += 1
        while comp_id > 1:
            # Connect component 0 with the nearest router of any other component.
            best: tuple[float, int, int] | None = None
            for u in range(n):
                if component[u] != 0:
                    continue
                for v in range(n):
                    if component[v] == 0:
                        continue
                    d = self._routers[u].distance_to(self._routers[v])
                    if best is None or d < best[0]:
                        best = (d, u, v)
            assert best is not None  # comp_id > 1 guarantees another component
            d, u, v = best
            self._adjacency[u].append((v, d))
            self._adjacency[v].append((u, d))
            merged = component[v]
            component = [0 if c == merged else c for c in component]
            # Re-number remaining components densely.
            remaining = sorted(set(component))
            renumber = {old: new for new, old in enumerate(remaining)}
            component = [renumber[c] for c in component]
            comp_id = len(remaining)

    def _all_pairs_shortest_paths(self) -> list[list[float]]:
        n = len(self._routers)
        dist: list[list[float]] = []
        for source in range(n):
            d = [math.inf] * n
            d[source] = 0.0
            heap: list[tuple[float, int]] = [(0.0, source)]
            while heap:
                du, u = heapq.heappop(heap)
                if du > d[u]:
                    continue
                for v, w in self._adjacency[u]:
                    nd = du + w
                    if nd < d[v]:
                        d[v] = nd
                        heapq.heappush(heap, (nd, v))
            dist.append(d)
        return dist

    def _rescale_distances(self) -> None:
        """Map router-path distances onto the configured latency range.

        ``latency_ms`` adds ``min + 2*last_mile`` on top of the scaled
        backbone distance, so the scaled span must leave room for the
        access links: mapping the longest path to ``max - min`` alone
        would make the worst pair read ``max + 2*last_mile`` (510 ms
        with defaults), violating the documented ``[min, max]``
        contract.  Clamped at zero for degenerate configs where the
        last miles alone exhaust the range.
        """
        finite = [
            d for row in self._dist for d in row if d > 0 and math.isfinite(d)
        ]
        longest = max(finite) if finite else 1.0
        span = max(
            0.0, self.max_latency_ms - self.min_latency_ms - 2.0 * self.last_mile_ms
        )
        scale = span / longest if longest > 0 else 0.0
        self._dist = [
            [d * scale if math.isfinite(d) else math.inf for d in row] for row in self._dist
        ]

    # -- queries ----------------------------------------------------------------

    def nearest_router(self, p: Point) -> int:
        """Index of the router closest to position ``p``."""
        best_idx = 0
        best_d = math.inf
        for idx, router in enumerate(self._routers):
            d = p.distance_to(router)
            if d < best_d:
                best_d = d
                best_idx = idx
        return best_idx

    def latency_ms(self, a: Point, b: Point) -> float:
        ra = self.nearest_router(a)
        rb = self.nearest_router(b)
        backbone = self._dist[ra][rb]
        return self.min_latency_ms + 2.0 * self.last_mile_ms + backbone

    def bind(self, positions: Sequence[Point]) -> PairLatency:
        # Peer -> nearest-router attachment is static, so pay the O(R)
        # scan once per peer here instead of twice per message; the
        # backbone table flattens to one float array indexed ra*R+rb.
        # min + 2*last_mile is left-associated first in latency_ms, so
        # precomputing it keeps the sum bit-identical.
        router_of = array("q", (self.nearest_router(p) for p in positions))
        n = len(self._routers)
        flat = array("d", (d for row in self._dist for d in row))
        base = self.min_latency_ms + 2.0 * self.last_mile_ms

        def pair_latency(a: int, b: int) -> float:
            return base + flat[router_of[a] * n + router_of[b]]

        return pair_latency

    @property
    def num_routers(self) -> int:
        """Number of routers in the backbone graph."""
        return len(self._routers)
