"""Physical underlay substrate: coordinates, latencies, landmarks.

Reproduces the BRITE-inspired network model of §5.1 (10–500 ms link
latencies) and the landmark/locId machinery of §4.1.1.
"""

from .coordinates import Point, clustered_points, max_pairwise_distance, random_points
from .landmarks import (
    LandmarkSet,
    locid_to_permutation,
    permutation_to_locid,
    rtt_ordering,
)
from .latency import EuclideanLatencyModel, LatencyModel, RouterLevelLatencyModel
from .underlay import Underlay

__all__ = [
    "Point",
    "random_points",
    "clustered_points",
    "max_pairwise_distance",
    "LatencyModel",
    "EuclideanLatencyModel",
    "RouterLevelLatencyModel",
    "LandmarkSet",
    "permutation_to_locid",
    "locid_to_permutation",
    "rtt_ordering",
    "Underlay",
]
