"""Landmark-based locality ids (locIds), as in §4.1.1 of the paper.

A small set of well-known machines ("landmarks") is spread across the
network.  Each peer measures its RTT to every landmark and orders the
landmark set by increasing RTT; physically close peers tend to produce
the same ordering.  Each possible ordering — a permutation of the
landmark indices — is assigned a locId, so ``k`` landmarks yield ``k!``
possible locIds (4 landmarks → 24 locIds, the paper's default; 5 →
120, which §5.1 argues scatters 1000 peers too thinly).

The permutation ↔ integer mapping uses the Lehmer code (factorial
number system), a bijection between permutations of ``k`` elements and
``range(k!)``.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from .coordinates import Point, random_points
from .latency import LatencyModel

__all__ = [
    "permutation_to_locid",
    "locid_to_permutation",
    "rtt_ordering",
    "LandmarkSet",
]


def permutation_to_locid(permutation: Sequence[int]) -> int:
    """Rank a permutation of ``range(k)`` into ``range(k!)`` (Lehmer code).

    >>> permutation_to_locid([0, 1, 2])
    0
    >>> permutation_to_locid([2, 1, 0])
    5
    """
    k = len(permutation)
    if sorted(permutation) != list(range(k)):
        raise ValueError(f"not a permutation of range({k}): {list(permutation)!r}")
    remaining = list(range(k))
    rank = 0
    for i, value in enumerate(permutation):
        position = remaining.index(value)
        rank += position * math.factorial(k - 1 - i)
        remaining.pop(position)
    return rank


def locid_to_permutation(locid: int, k: int) -> list[int]:
    """Inverse of :func:`permutation_to_locid` for ``k`` landmarks.

    >>> locid_to_permutation(5, 3)
    [2, 1, 0]
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not (0 <= locid < math.factorial(k)):
        raise ValueError(f"locid {locid} out of range for {k} landmarks")
    remaining = list(range(k))
    permutation: list[int] = []
    for i in range(k):
        base = math.factorial(k - 1 - i)
        position, locid = divmod(locid, base)
        permutation.append(remaining.pop(position))
    return permutation


def rtt_ordering(rtts: Sequence[float]) -> list[int]:
    """Landmark indices ordered by increasing RTT.

    Ties are broken by landmark index, which keeps the ordering
    deterministic (two peers with identical RTT vectors always agree).
    """
    return sorted(range(len(rtts)), key=lambda i: (rtts[i], i))


class LandmarkSet:
    """The deployed landmarks plus the locId computation.

    Parameters
    ----------
    positions:
        Landmark coordinates.  Use :meth:`place_random` or
        :meth:`place_spread` to create them.
    model:
        The latency model used for a peer's RTT measurements.
    """

    def __init__(self, positions: Sequence[Point], model: LatencyModel) -> None:
        if not positions:
            raise ValueError("at least one landmark is required")
        self._positions = list(positions)
        self._model = model

    @classmethod
    def place_random(
        cls, count: int, model: LatencyModel, rng: random.Random
    ) -> LandmarkSet:
        """Drop ``count`` landmarks uniformly at random."""
        return cls(random_points(count, rng), model)

    @classmethod
    def place_spread(cls, count: int, model: LatencyModel) -> LandmarkSet:
        """Place landmarks deterministically, maximally spread out.

        The first four go to the square's corners, the fifth to the
        centre, further ones to edge midpoints — a reasonable stand-in
        for "well-known machines spread across the Internet".
        """
        anchor_layout = [
            Point(0.0, 0.0),
            Point(1.0, 1.0),
            Point(0.0, 1.0),
            Point(1.0, 0.0),
            Point(0.5, 0.5),
            Point(0.5, 0.0),
            Point(0.5, 1.0),
            Point(0.0, 0.5),
            Point(1.0, 0.5),
        ]
        if count > len(anchor_layout):
            raise ValueError(
                f"place_spread supports at most {len(anchor_layout)} landmarks, got {count}"
            )
        return cls(anchor_layout[:count], model)

    @property
    def count(self) -> int:
        """Number of landmarks."""
        return len(self._positions)

    @property
    def num_locids(self) -> int:
        """Number of distinct locIds = count!."""
        return math.factorial(len(self._positions))

    @property
    def positions(self) -> list[Point]:
        """Copies of the landmark coordinates."""
        return list(self._positions)

    def measure_rtts(self, peer_position: Point) -> list[float]:
        """A peer's RTT (ms) to each landmark, in landmark order."""
        return [self._model.rtt_ms(peer_position, lm) for lm in self._positions]

    def locid_of(self, peer_position: Point) -> int:
        """The locId a peer at ``peer_position`` computes on arrival."""
        return permutation_to_locid(rtt_ordering(self.measure_rtts(peer_position)))

    def locid_with_rtts(self, peer_position: Point) -> tuple[int, list[float]]:
        """locId together with the raw RTT vector (for diagnostics)."""
        rtts = self.measure_rtts(peer_position)
        return permutation_to_locid(rtt_ordering(rtts)), rtts
