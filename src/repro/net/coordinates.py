"""Geometric placement of peers in a unit square.

The BRITE topology generator the paper references places routers on a
plane and derives link latencies from geometric distance.  We keep the
same idea: every peer gets a point in the unit square, and the latency
model (:mod:`repro.net.latency`) maps distances to the paper's 10–500 ms
range.  Placement in a metric space is what makes landmark RTT
orderings *meaningful*: peers that are close in the plane measure
similar RTT vectors and therefore share a locId.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["Point", "random_points", "clustered_points", "max_pairwise_distance"]


@dataclass(frozen=True)
class Point:
    """A position in the unit square."""

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.x <= 1.0 and 0.0 <= self.y <= 1.0):
            raise ValueError(f"Point must lie in the unit square, got ({self.x}, {self.y})")

    def distance_to(self, other: Point) -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


#: Largest possible distance between two points of the unit square.
UNIT_SQUARE_DIAMETER = math.sqrt(2.0)


def random_points(count: int, rng: random.Random) -> list[Point]:
    """Place ``count`` points uniformly at random in the unit square."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [Point(rng.random(), rng.random()) for _ in range(count)]


def clustered_points(
    count: int,
    rng: random.Random,
    num_clusters: int = 8,
    spread: float = 0.08,
) -> list[Point]:
    """Place points around random cluster centres (an AS-like layout).

    Internet hosts are not uniformly spread — they clump into networks
    and regions.  This generator draws ``num_clusters`` centres
    uniformly, then scatters each point around a random centre with a
    Gaussian of standard deviation ``spread`` (clamped to the square).
    Clustered layouts make locality ids informative: most clusters fall
    entirely inside one landmark ordering.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    centres = [(rng.random(), rng.random()) for _ in range(num_clusters)]
    points: list[Point] = []
    for _ in range(count):
        cx, cy = centres[rng.randrange(num_clusters)]
        x = min(1.0, max(0.0, rng.gauss(cx, spread)))
        y = min(1.0, max(0.0, rng.gauss(cy, spread)))
        points.append(Point(x, y))
    return points


def max_pairwise_distance(points: Sequence[Point]) -> float:
    """Exact maximum pairwise distance (O(n²); for tests and small sets)."""
    best = 0.0
    for i, p in enumerate(points):
        for q in points[i + 1 :]:
            d = p.distance_to(q)
            if d > best:
                best = d
    return best
