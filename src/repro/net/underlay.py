"""The physical underlay: peer positions, RTT queries, locIds.

:class:`Underlay` ties together coordinates, a latency model, and a
landmark set.  It answers the three questions the rest of the system
asks about the physical network:

- What is the one-way latency / RTT between peers ``a`` and ``b``?
  (message timing, download distance, RTT probes);
- What is peer ``n``'s locId?  (location-aware indexes);
- Where are the landmarks?  (diagnostics).

The underlay is immutable after construction; churn operates purely at
the overlay level (a peer that leaves keeps its coordinates for when it
returns, like a host keeping its physical location).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .coordinates import Point, clustered_points, random_points
from .landmarks import LandmarkSet
from .latency import EuclideanLatencyModel, LatencyModel

__all__ = ["Underlay"]


class Underlay:
    """Physical positions and latencies for a set of peers.

    Parameters
    ----------
    positions:
        One coordinate per peer; peer ids are the list indices.
    model:
        Latency model shared with the landmark set.
    landmarks:
        The deployed landmark machines.
    """

    def __init__(
        self,
        positions: Sequence[Point],
        model: LatencyModel,
        landmarks: LandmarkSet,
    ) -> None:
        if not positions:
            raise ValueError("an underlay needs at least one peer position")
        self._positions = list(positions)
        self._model = model
        self._landmarks = landmarks
        self._locids: list[int] = [landmarks.locid_of(p) for p in self._positions]
        # Per-message hot path: a bound closure over precomputed state
        # (flat coordinates / router attachment + flat distance table)
        # instead of per-call scans.  Bit-identical to the scan path.
        self._pair_latency = model.bind(self._positions)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def build(
        cls,
        num_peers: int,
        rng: random.Random,
        min_latency_ms: float = 10.0,
        max_latency_ms: float = 500.0,
        num_landmarks: int = 4,
        clustered: bool = True,
        model: LatencyModel | None = None,
    ) -> Underlay:
        """Construct the paper's underlay.

        Peers are placed in the unit square (clustered by default — see
        :func:`repro.net.coordinates.clustered_points`), latencies follow
        the BRITE-inspired 10–500 ms Euclidean model unless an explicit
        ``model`` is supplied, and landmarks are spread deterministically.
        """
        if model is None:
            model = EuclideanLatencyModel(min_latency_ms, max_latency_ms)
        if clustered:
            positions = clustered_points(num_peers, rng)
        else:
            positions = random_points(num_peers, rng)
        landmarks = LandmarkSet.place_spread(num_landmarks, model)
        return cls(positions, model, landmarks)

    # -- queries -------------------------------------------------------------

    @property
    def num_peers(self) -> int:
        """Number of peers placed on this underlay."""
        return len(self._positions)

    @property
    def landmarks(self) -> LandmarkSet:
        """The landmark deployment."""
        return self._landmarks

    @property
    def model(self) -> LatencyModel:
        """The latency model in use."""
        return self._model

    def position_of(self, peer_id: int) -> Point:
        """Coordinates of ``peer_id``."""
        return self._positions[peer_id]

    def locid_of(self, peer_id: int) -> int:
        """The locId ``peer_id`` computed at arrival (§4.1.1)."""
        return self._locids[peer_id]

    def latency_ms(self, a: int, b: int) -> float:
        """One-way latency between peers ``a`` and ``b`` in milliseconds."""
        return self._pair_latency(a, b)

    def latency_s(self, a: int, b: int) -> float:
        """One-way latency between peers ``a`` and ``b`` in seconds."""
        return self._pair_latency(a, b) / 1000.0

    def rtt_ms(self, a: int, b: int) -> float:
        """Round-trip time between peers ``a`` and ``b`` in milliseconds."""
        return 2.0 * self._pair_latency(a, b)

    def scan_latency_ms(self, a: int, b: int) -> float:
        """Reference latency via the model's per-call path (O(R) scans
        for the router model).  Kept for the substrate-equivalence suite
        and the scale benchmark's fast-vs-scan speedup assertion."""
        return self._model.latency_ms(self._positions[a], self._positions[b])

    def scan_rtt_ms(self, a: int, b: int) -> float:
        """Reference RTT via the model's per-call path."""
        return self._model.rtt_ms(self._positions[a], self._positions[b])

    def locid_histogram(self) -> dict[int, int]:
        """How many peers share each locId (diagnostic for §5.1's
        landmark-count discussion)."""
        histogram: dict[int, int] = {}
        for locid in self._locids:
            histogram[locid] = histogram.get(locid, 0) + 1
        return histogram

    def mean_peers_per_locid(self) -> float:
        """Average population of the non-empty locIds."""
        histogram = self.locid_histogram()
        return len(self._locids) / len(histogram) if histogram else 0.0
