"""repro — a reproduction of *Locaware: Index Caching in Unstructured
P2P-file Sharing Systems* (El Dick & Pacitti, DAMAP/EDBT 2009).

Quickstart::

    from repro import SimulationConfig, P2PNetwork, LocawareProtocol
    from repro.workload import QueryWorkload

    config = SimulationConfig.small()
    network = P2PNetwork.build(config)
    protocol = LocawareProtocol(network)
    protocol.start()
    workload = QueryWorkload(network, protocol.issue_query, max_queries=200)
    workload.start()
    # Locaware's periodic Bloom pushes keep the event queue alive, so
    # advance time in bounded slices instead of draining the queue:
    while workload.generated < 200 or protocol.pending_queries > 0:
        network.sim.run(until=network.sim.now + 500.0)
    protocol.stop()
    print(sum(o.success for o in protocol.outcomes), "queries satisfied")

Higher-level experiment drivers (the paper's figures) live in
:mod:`repro.experiments`; measurement helpers in :mod:`repro.analysis`.
"""

from .core import (
    BloomRouter,
    LocationAwareIndex,
    LocationAwareSelector,
    LocawareProtocol,
)
from .overlay import ChurnProcess, OverlayGraph, P2PNetwork, Peer
from .protocols import (
    DicasKeysProtocol,
    DicasProtocol,
    FloodingProtocol,
    QueryOutcome,
    SearchProtocol,
)
from .sim import RandomStreams, SimulationConfig, Simulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SimulationConfig",
    "Simulator",
    "RandomStreams",
    "P2PNetwork",
    "Peer",
    "OverlayGraph",
    "ChurnProcess",
    "SearchProtocol",
    "QueryOutcome",
    "FloodingProtocol",
    "DicasProtocol",
    "DicasKeysProtocol",
    "LocawareProtocol",
    "LocationAwareIndex",
    "BloomRouter",
    "LocationAwareSelector",
]
