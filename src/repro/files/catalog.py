"""The shared-file pool (catalog) and query/file matching rules.

A :class:`FileCatalog` is the global universe of files that exist in
the simulated community: the paper's "pool of 3000" filenames, each
formed of 3 keywords from a 9000-keyword pool.  Files are identified by
a dense integer ``file_id``; the catalog maps ids to keyword sets and
canonical filename strings, and answers the matching question at the
heart of keyword search (§3.1):

    a query ``q`` is satisfied by a file ``f`` iff every keyword of
    ``q`` is a keyword of ``f``.

The catalog also maintains a global inverted index (keyword → file
ids), used by peers' local stores and by tests that need ground truth
about which files can possibly satisfy a query.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .keywords import KeywordPool, join_keywords

__all__ = ["FileRecord", "FileCatalog"]


@dataclass(frozen=True)
class FileRecord:
    """One file of the shared pool."""

    file_id: int
    filename: str
    keywords: frozenset[str]

    def matches_keywords(self, query_keywords: Iterable[str]) -> bool:
        """Whether every query keyword appears in this filename (§3.1)."""
        return all(kw in self.keywords for kw in query_keywords)


class FileCatalog:
    """The universe of shareable files.

    Filenames are guaranteed distinct: generation re-draws keyword
    combinations until unseen (with pools as sparse as the paper's —
    C(9000, 3) ≈ 1.2 · 10¹¹ combinations for 3000 files — re-draws are
    vanishingly rare, but the guarantee matters for correctness).
    """

    def __init__(self, records: Sequence[FileRecord], pool: KeywordPool) -> None:
        if not records:
            raise ValueError("a catalog needs at least one file")
        self._records = list(records)
        self._pool = pool
        self._by_filename: dict[str, FileRecord] = {}
        self._inverted: dict[str, set[int]] = {}
        for record in self._records:
            if record.filename in self._by_filename:
                raise ValueError(f"duplicate filename {record.filename!r} in catalog")
            self._by_filename[record.filename] = record
            for kw in record.keywords:
                self._inverted.setdefault(kw, set()).add(record.file_id)

    # -- construction ----------------------------------------------------

    @classmethod
    def generate(
        cls,
        num_files: int,
        keywords_per_file: int,
        pool: KeywordPool,
        rng: random.Random,
    ) -> FileCatalog:
        """Generate the paper's file pool (distinct keyword combinations)."""
        if num_files < 1:
            raise ValueError(f"num_files must be >= 1, got {num_files}")
        seen: set[frozenset[str]] = set()
        records: list[FileRecord] = []
        attempts_left = num_files * 100
        while len(records) < num_files:
            if attempts_left <= 0:
                raise ValueError(
                    "could not generate enough distinct filenames; "
                    "keyword pool too small for the requested catalog"
                )
            attempts_left -= 1
            keywords = frozenset(pool.sample_filename_keywords(keywords_per_file, rng))
            if len(keywords) != keywords_per_file or keywords in seen:
                continue
            seen.add(keywords)
            file_id = len(records)
            records.append(
                FileRecord(
                    file_id=file_id,
                    filename=join_keywords(sorted(keywords)),
                    keywords=keywords,
                )
            )
        return cls(records, pool)

    # -- lookups -------------------------------------------------------------

    @property
    def num_files(self) -> int:
        """Number of files in the pool."""
        return len(self._records)

    @property
    def keyword_pool(self) -> KeywordPool:
        """The vocabulary the catalog draws from."""
        return self._pool

    def record(self, file_id: int) -> FileRecord:
        """The record for ``file_id``."""
        return self._records[file_id]

    def filename(self, file_id: int) -> str:
        """Canonical filename string of ``file_id``."""
        return self._records[file_id].filename

    def keywords(self, file_id: int) -> frozenset[str]:
        """Keyword set of ``file_id``."""
        return self._records[file_id].keywords

    def by_filename(self, filename: str) -> FileRecord | None:
        """The record with this exact filename, or ``None``."""
        return self._by_filename.get(filename)

    def all_records(self) -> list[FileRecord]:
        """A copy of every record, in file-id order."""
        return list(self._records)

    # -- matching -----------------------------------------------------------

    def matching_files(self, query_keywords: Iterable[str]) -> set[int]:
        """Ground truth: ids of every file satisfying the query.

        Intersects inverted-index posting lists, smallest first.
        Returns the empty set when any keyword is unknown.
        """
        keyword_list = list(query_keywords)
        if not keyword_list:
            return set()
        postings: list[set[int]] = []
        for kw in keyword_list:
            posting = self._inverted.get(kw)
            if not posting:
                return set()
            postings.append(posting)
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return result

    def file_matches(self, file_id: int, query_keywords: Iterable[str]) -> bool:
        """Whether the given file satisfies the query."""
        return self._records[file_id].matches_keywords(query_keywords)

    def keyword_document_frequency(self, keyword: str) -> int:
        """How many catalog files contain ``keyword``."""
        posting = self._inverted.get(keyword)
        return len(posting) if posting else 0
