"""Per-peer shared-file storage with a local inverted keyword index.

Every peer shares a set of files: its initial endowment (3 random files
in the paper's setup) plus every file it successfully downloads —
that is the *natural replication* Locaware leverages (§4.1.2).  The
store indexes its contents by keyword so that the per-message local
lookup done by every protocol ("can I satisfy this query from my own
files?", §3.1) is proportional to the smallest posting list rather
than to the store size.
"""

from __future__ import annotations

from collections.abc import Iterable

from .catalog import FileCatalog

__all__ = ["FileStore"]


class FileStore:
    """The set of files a single peer currently shares."""

    def __init__(self, catalog: FileCatalog) -> None:
        self._catalog = catalog
        self._files: set[int] = set()
        self._inverted: dict[str, set[int]] = {}

    @property
    def size(self) -> int:
        """Number of files currently shared."""
        return len(self._files)

    def file_ids(self) -> set[int]:
        """A copy of the shared file-id set."""
        return set(self._files)

    def contains(self, file_id: int) -> bool:
        """Whether ``file_id`` is currently shared."""
        return file_id in self._files

    def add(self, file_id: int) -> bool:
        """Share ``file_id``.  Returns ``False`` if it was already shared."""
        if file_id in self._files:
            return False
        self._files.add(file_id)
        for kw in self._catalog.keywords(file_id):
            self._inverted.setdefault(kw, set()).add(file_id)
        return True

    def add_many(self, file_ids: Iterable[int]) -> int:
        """Share several files; returns how many were newly added."""
        return sum(1 for fid in file_ids if self.add(fid))

    def remove(self, file_id: int) -> bool:
        """Stop sharing ``file_id``.  Returns ``False`` if absent."""
        if file_id not in self._files:
            return False
        self._files.discard(file_id)
        for kw in self._catalog.keywords(file_id):
            posting = self._inverted.get(kw)
            if posting is not None:
                posting.discard(file_id)
                if not posting:
                    del self._inverted[kw]
        return True

    def clear(self) -> None:
        """Drop every shared file (peer departure)."""
        self._files.clear()
        self._inverted.clear()

    def matching_files(self, query_keywords: Iterable[str]) -> set[int]:
        """Locally shared files satisfying the query (all keywords present)."""
        keyword_list = list(query_keywords)
        if not keyword_list:
            return set()
        postings: list[set[int]] = []
        for kw in keyword_list:
            posting = self._inverted.get(kw)
            if not posting:
                return set()
            postings.append(posting)
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return result

    def first_match(self, query_keywords: Iterable[str]) -> int | None:
        """Any one locally shared file satisfying the query, or ``None``.

        Deterministic: returns the smallest matching file id.
        """
        matches = self.matching_files(query_keywords)
        return min(matches) if matches else None
