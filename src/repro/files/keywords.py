"""Keyword vocabulary and filename synthesis.

The paper's workload (§5.1) builds filenames from keywords: each
filename is formed of 3 keywords randomly chosen from a pool of 9000,
and queries pick 1–3 keywords of the queried filename.  This module
owns the vocabulary and the "filenames are broken into keywords
following predefined rules" step (§3.1): our predefined rule is that a
filename is the hyphen-joined, sorted sequence of its keywords, so
tokenisation is trivially invertible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

__all__ = ["KeywordPool", "tokenize_filename", "join_keywords", "canonical_form"]

#: Separator used when rendering a keyword set as a filename string.
FILENAME_SEPARATOR = "-"


def join_keywords(keywords: Sequence[str]) -> str:
    """Render keywords as a canonical filename string (sorted, hyphenated).

    >>> join_keywords(["beta", "alpha"])
    'alpha-beta'
    """
    if not keywords:
        raise ValueError("a filename needs at least one keyword")
    for kw in keywords:
        if FILENAME_SEPARATOR in kw:
            raise ValueError(f"keyword {kw!r} contains the filename separator")
        if not kw:
            raise ValueError("keywords must be non-empty")
    return FILENAME_SEPARATOR.join(sorted(keywords))


def tokenize_filename(filename: str) -> list[str]:
    """Split a filename back into its keywords (the §3.1 predefined rule).

    >>> tokenize_filename('alpha-beta')
    ['alpha', 'beta']
    """
    if not filename:
        raise ValueError("cannot tokenize an empty filename")
    return filename.split(FILENAME_SEPARATOR)


def canonical_form(keywords: Sequence[str]) -> str:
    """Canonical string for a keyword *set* (used by Dicas filename hashing).

    Sorting makes the form independent of keyword order, so a query that
    contains all of a filename's keywords — in any order — canonicalises
    to exactly the filename string.
    """
    return join_keywords(list(keywords))


class KeywordPool:
    """The fixed keyword vocabulary of one simulated system.

    Keywords are synthetic tokens ``kw000000`` … ``kwNNNNNN``; identity
    (not linguistics) is all the protocols care about.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"keyword pool size must be >= 1, got {size}")
        self._size = size
        width = max(6, len(str(size - 1)))
        self._keywords: list[str] = [f"kw{idx:0{width}d}" for idx in range(size)]

    @property
    def size(self) -> int:
        """Number of keywords in the vocabulary."""
        return self._size

    def keyword(self, index: int) -> str:
        """The ``index``-th keyword."""
        return self._keywords[index]

    def all_keywords(self) -> list[str]:
        """A copy of the whole vocabulary."""
        return list(self._keywords)

    def sample_filename_keywords(
        self, count: int, rng: random.Random
    ) -> tuple[str, ...]:
        """Draw ``count`` distinct keywords for a new filename."""
        if count > self._size:
            raise ValueError(
                f"cannot draw {count} distinct keywords from a pool of {self._size}"
            )
        return tuple(rng.sample(self._keywords, count))

    def __contains__(self, keyword: object) -> bool:
        if not isinstance(keyword, str):
            return False
        # All keywords share the 'kw' prefix + zero-padded index layout.
        if not keyword.startswith("kw"):
            return False
        suffix = keyword[2:]
        if not suffix.isdigit():
            return False
        return int(suffix) < self._size

    def __len__(self) -> int:
        return self._size
