"""File-sharing substrate: keyword vocabulary, file pool, per-peer stores."""

from .catalog import FileCatalog, FileRecord
from .keywords import KeywordPool, canonical_form, join_keywords, tokenize_filename
from .storage import FileStore

__all__ = [
    "KeywordPool",
    "join_keywords",
    "tokenize_filename",
    "canonical_form",
    "FileCatalog",
    "FileRecord",
    "FileStore",
]
