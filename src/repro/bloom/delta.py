"""Changed-bit delta encoding for Bloom filter updates.

§4.2 (footnote 1) of the paper: when a filename is added to or removed
from the response index, only a few bits of the 1200-bit vector change,
so a peer transmits just the *locations* of the changed bits — "the
number of changed bits ... is limited by 12 at most and the location of
each bit by 11 bits.  Thus, the information to be sent is limited by
I = 12 * 11 bits = 0.132 Kb".

:func:`diff` computes the changed positions between two filter states,
:func:`apply_delta` flips them on a neighbor's copy, and
:class:`DeltaCodec` measures the encoded size in bits (used by ablation
A6 to verify the paper's overhead bound).  When a delta would be larger
than the full vector — e.g. after mass evictions — :meth:`DeltaCodec.
encode` falls back to shipping the full filter, exactly what a real
implementation would do.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from .bloom_filter import BloomFilter

__all__ = ["diff", "apply_delta", "BloomDelta", "DeltaCodec"]


def diff(old: BloomFilter, new: BloomFilter) -> list[int]:
    """Positions whose bit value differs between ``old`` and ``new``."""
    if old.bits != new.bits or old.hashes != new.hashes:
        raise ValueError("cannot diff filters with different parameters")
    # One big-int XOR instead of a per-byte loop; position order stays
    # ascending, matching the old byte-wise/low-bit-first extraction.
    x = old.bit_int() ^ new.bit_int()
    changed: list[int] = []
    while x:
        low = x & -x
        changed.append(low.bit_length() - 1)
        x ^= low
    return changed


def apply_delta(target: BloomFilter, changed_positions: Sequence[int]) -> None:
    """Flip every listed bit of ``target`` in place.

    Applying the same delta twice is a no-op pair (an involution), so a
    test can verify roundtripping: ``apply(diff(a, b))`` maps ``a`` to
    ``b`` and back.
    """
    for pos in changed_positions:
        target.set_bit(pos, not target.get_bit(pos))


@dataclass(frozen=True)
class BloomDelta:
    """One encoded update message.

    Either ``changed_positions`` (delta mode) or ``full_vector``
    (fallback mode) is set, never both.
    """

    changed_positions: tuple[int, ...] | None
    full_vector: bytes | None
    encoded_bits: int

    @property
    def is_full(self) -> bool:
        """Whether this update carries the whole vector."""
        return self.full_vector is not None


class DeltaCodec:
    """Encodes filter updates as changed-bit lists with a full fallback."""

    def __init__(self, bits: int, hashes: int) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        self._bits = bits
        self._hashes = hashes
        # Position width: 11 bits for the paper's 1200-bit vector.
        self._position_bits = max(1, math.ceil(math.log2(bits)))

    @property
    def position_bits(self) -> int:
        """Bits needed to address one position of the vector."""
        return self._position_bits

    def encode(self, old: BloomFilter, new: BloomFilter) -> BloomDelta:
        """Encode the update from ``old`` to ``new``.

        Uses the smaller of (changed-position list, full vector).
        """
        changed = diff(old, new)
        delta_bits = len(changed) * self._position_bits
        if delta_bits <= self._bits:
            return BloomDelta(
                changed_positions=tuple(changed),
                full_vector=None,
                encoded_bits=delta_bits,
            )
        return BloomDelta(
            changed_positions=None,
            full_vector=new.to_bytes(),
            encoded_bits=self._bits,
        )

    def decode_into(self, target: BloomFilter, delta: BloomDelta) -> None:
        """Apply an encoded update to a neighbor's stored copy."""
        if delta.full_vector is not None:
            replacement = BloomFilter.from_bytes(
                delta.full_vector, self._bits, self._hashes
            )
            for pos in diff(target, replacement):
                target.set_bit(pos, not target.get_bit(pos))
            return
        assert delta.changed_positions is not None
        apply_delta(target, delta.changed_positions)
