"""Bloom filter parameter mathematics.

Standard results (Bloom 1970; Fan et al. 1998 — both cited by the
paper): with ``m`` bits, ``k`` hash functions, and ``n`` inserted
elements, the expected false-positive probability is
``(1 - e^(-k·n/m))^k``, minimised at ``k = (m/n)·ln 2``.

The paper's sizing argument (§5.1) is reproduced by
:func:`recommended_bits`: an "enlarged response index with 50 filenames
of 3 keywords" holds up to 150 keywords; 1200 bits gives m/n = 8, and
with the optimal k ≈ 5 hashes a false-positive rate around 2 %.
"""

from __future__ import annotations

import math

__all__ = [
    "false_positive_rate",
    "optimal_hash_count",
    "recommended_bits",
    "expected_fill_fraction",
]


def false_positive_rate(bits: int, hashes: int, inserted: int) -> float:
    """Expected false-positive probability of a Bloom filter.

    >>> round(false_positive_rate(1200, 4, 150), 3)
    0.024
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    if hashes <= 0:
        raise ValueError(f"hashes must be positive, got {hashes}")
    if inserted < 0:
        raise ValueError(f"inserted must be non-negative, got {inserted}")
    if inserted == 0:
        return 0.0
    return (1.0 - math.exp(-hashes * inserted / bits)) ** hashes


def optimal_hash_count(bits: int, expected_elements: int) -> int:
    """The k minimising the false-positive rate, rounded and clamped to >= 1."""
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    if expected_elements <= 0:
        raise ValueError(f"expected_elements must be positive, got {expected_elements}")
    k = round((bits / expected_elements) * math.log(2.0))
    return max(1, k)


def recommended_bits(expected_elements: int, target_fpr: float) -> int:
    """Smallest m achieving ``target_fpr`` with the optimal k.

    Uses the closed form ``m = -n·ln p / (ln 2)²``.
    """
    if expected_elements <= 0:
        raise ValueError(f"expected_elements must be positive, got {expected_elements}")
    if not (0.0 < target_fpr < 1.0):
        raise ValueError(f"target_fpr must be in (0, 1), got {target_fpr}")
    m = -expected_elements * math.log(target_fpr) / (math.log(2.0) ** 2)
    return max(8, math.ceil(m))


def expected_fill_fraction(bits: int, hashes: int, inserted: int) -> float:
    """Expected fraction of set bits after ``inserted`` insertions."""
    if inserted < 0:
        raise ValueError(f"inserted must be non-negative, got {inserted}")
    if bits <= 0 or hashes <= 0:
        raise ValueError("bits and hashes must be positive")
    return 1.0 - math.exp(-hashes * inserted / bits)
