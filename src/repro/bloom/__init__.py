"""Bloom filter substrate: plain, counting, deltas, parameter math.

Implements the structures of §4.2 of the paper: per-peer keyword
filters over cached filenames, deletion support for cache evictions,
and the changed-bit update protocol of footnote 1.
"""

from .bloom_filter import BloomFilter, ByteBloomFilter, element_mask, element_positions
from .counting import CountingBloomFilter
from .delta import BloomDelta, DeltaCodec, apply_delta, diff
from .params import (
    expected_fill_fraction,
    false_positive_rate,
    optimal_hash_count,
    recommended_bits,
)

__all__ = [
    "BloomFilter",
    "ByteBloomFilter",
    "element_mask",
    "element_positions",
    "CountingBloomFilter",
    "BloomDelta",
    "DeltaCodec",
    "diff",
    "apply_delta",
    "false_positive_rate",
    "optimal_hash_count",
    "recommended_bits",
    "expected_fill_fraction",
]
