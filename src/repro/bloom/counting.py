"""A counting Bloom filter supporting deletions.

Locaware's response index evicts filenames (recency replacement,
capacity limits — §4.1.2), and "a Bloom filter BF_n is built
incrementally as new filenames are inserted in RI_n *and existing ones
discarded*" (§4.2).  A plain bit vector cannot delete safely: two
cached filenames may share a keyword, or two different keywords may
collide on a bit position.  The classic fix (Fan et al. 1998, the
paper's reference [8]) replaces each bit with a small counter.

Peers therefore keep this counting filter locally and export the plain
:class:`~repro.bloom.bloom_filter.BloomFilter` view — a bit is set iff
its counter is non-zero — which is what travels to neighbors.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable

from .bloom_filter import BloomFilter, element_positions

__all__ = ["CountingBloomFilter"]


class CountingBloomFilter:
    """Bloom filter with per-position counters (supports remove).

    Counters live in a compact ``array('H')`` (65535 is far beyond the
    4-bit regime real deployments assume), and the exported bit vector
    — bit set iff counter non-zero — is maintained incrementally as one
    int, so :meth:`to_bloom_filter` is O(words) instead of an O(bits)
    counter scan per neighbor push.
    """

    __slots__ = ("_bits", "_hashes", "_counters", "_elements", "_bitvec")

    def __init__(self, bits: int, hashes: int) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        if hashes <= 0:
            raise ValueError(f"hashes must be positive, got {hashes}")
        self._bits = bits
        self._hashes = hashes
        self._counters = array("H", bytes(2 * bits))
        self._bitvec = 0
        # Multiset of inserted elements: removal of a never-inserted (or
        # already fully removed) element must be rejected, otherwise the
        # counters would underflow and membership would break.
        self._elements: dict[str, int] = {}

    @property
    def bits(self) -> int:
        """Filter size m in bits."""
        return self._bits

    @property
    def hashes(self) -> int:
        """Number of hash functions k."""
        return self._hashes

    @property
    def element_count(self) -> int:
        """Total multiplicity currently inserted."""
        return sum(self._elements.values())

    @property
    def distinct_element_count(self) -> int:
        """Number of distinct elements currently inserted."""
        return len(self._elements)

    def add(self, element: str) -> None:
        """Insert ``element`` (multiset semantics: repeats stack)."""
        counters = self._counters
        for pos in element_positions(element, self._bits, self._hashes):
            if counters[pos] == 0:
                self._bitvec |= 1 << pos
            counters[pos] += 1
        self._elements[element] = self._elements.get(element, 0) + 1

    def add_all(self, elements: Iterable[str]) -> None:
        """Insert every element of ``elements``."""
        for element in elements:
            self.add(element)

    def remove(self, element: str) -> None:
        """Remove one occurrence of ``element``.

        Raises ``KeyError`` if the element is not currently present —
        silently decrementing counters for absent elements is the
        classic counting-filter corruption bug.
        """
        count = self._elements.get(element, 0)
        if count == 0:
            raise KeyError(f"cannot remove absent element {element!r}")
        counters = self._counters
        for pos in element_positions(element, self._bits, self._hashes):
            counters[pos] -= 1
            if counters[pos] == 0:
                self._bitvec &= ~(1 << pos)
        if count == 1:
            del self._elements[element]
        else:
            self._elements[element] = count - 1

    def discard(self, element: str) -> bool:
        """Like :meth:`remove`, but returns ``False`` instead of raising."""
        if self._elements.get(element, 0) == 0:
            return False
        self.remove(element)
        return True

    def __contains__(self, element: str) -> bool:
        bitvec = self._bitvec
        return all(
            (bitvec >> pos) & 1
            for pos in element_positions(element, self._bits, self._hashes)
        )

    def contains_all(self, elements: Iterable[str]) -> bool:
        """Whether every element tests positive."""
        return all(element in self for element in elements)

    def clear(self) -> None:
        """Reset to empty."""
        self._counters = array("H", bytes(2 * self._bits))
        self._bitvec = 0
        self._elements.clear()

    def max_counter(self) -> int:
        """Largest counter value (4-bit counters suffice in practice;
        this lets tests verify we stay in that regime)."""
        return max(self._counters) if self._counters else 0

    def to_bloom_filter(self) -> BloomFilter:
        """Export the plain bit-vector view (what neighbors receive).

        O(words): the exported vector is maintained incrementally, so
        the per-push-period counter scan is gone.
        """
        return BloomFilter.from_bit_int(self._bitvec, self._bits, self._hashes)

    def set_positions(self) -> list[int]:
        """Sorted positions with non-zero counters."""
        out: list[int] = []
        v = self._bitvec
        while v:
            low = v & -v
            out.append(low.bit_length() - 1)
            v ^= low
        return out

    def __repr__(self) -> str:
        return (
            f"CountingBloomFilter(bits={self._bits}, hashes={self._hashes}, "
            f"elements={self.element_count})"
        )
