"""A plain bit-vector Bloom filter.

This is the structure exchanged between Locaware neighbors (§4.2):
peer ``n`` summarises the keywords of every filename cached in its
response index as ``BF_n`` and ships it to neighbors, who route queries
by membership tests against the stored copies.

Hashing uses the Kirsch–Mitzenmacher double-hashing scheme: two 64-bit
values are drawn from a single BLAKE2b digest of the element, and the
``i``-th probe position is ``(h1 + i·h2) mod m``.  BLAKE2b keeps
membership deterministic across processes and Python versions (the
built-in ``hash()`` is salted per process, which would break
reproducibility of routing decisions).

Hot-path layout: the probe positions of an element depend only on
``(element, bits, hashes)``, so they are memoised — one BLAKE2b per
*distinct* keyword per filter geometry, not one per membership test.
The bit vector itself is a single Python int (:class:`BloomFilter`), so
an insert or a k-probe membership test is one mask OR/AND on a 1200-bit
word instead of k byte-indexed loads, and union/compare are O(words).
:class:`ByteBloomFilter` preserves the original bytearray layout for
the substrate-equivalence suite.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from functools import lru_cache

__all__ = ["element_positions", "element_mask", "BloomFilter", "ByteBloomFilter"]


@lru_cache(maxsize=None)
def _positions_cached(element: str, bits: int, hashes: int) -> tuple[int, ...]:
    digest = hashlib.blake2b(element.encode("utf-8"), digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:], "big") | 1  # odd => full-period stride
    return tuple((h1 + i * h2) % bits for i in range(hashes))


def element_positions(element: str, bits: int, hashes: int) -> tuple[int, ...]:
    """The probe positions of ``element`` in an ``(m=bits, k=hashes)`` filter.

    Exposed at module level because the plain and counting filters must
    agree on positions exactly (the counting filter exports a plain
    bit-vector view of itself).  Memoised: the keyword vocabulary of a
    run is small and static, so each distinct ``(element, bits,
    hashes)`` triple pays for its BLAKE2b digest once.
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    if hashes <= 0:
        raise ValueError(f"hashes must be positive, got {hashes}")
    return _positions_cached(element, bits, hashes)


@lru_cache(maxsize=None)
def element_mask(element: str, bits: int, hashes: int) -> int:
    """The element's probe positions as an OR-ready bit mask."""
    mask = 0
    for pos in element_positions(element, bits, hashes):
        mask |= 1 << pos
    return mask


def positions_cache_info():
    """Cache statistics for the memoised position function (for tests)."""
    return _positions_cached.cache_info()


def positions_cache_clear() -> None:
    """Drop the memoised positions/masks (for tests)."""
    _positions_cached.cache_clear()
    element_mask.cache_clear()


class BloomFilter:
    """A fixed-size Bloom filter over strings.

    Supports insertion, membership, union, and (de)serialisation of the
    raw bit vector.  Deletion is *not* supported here — peers that must
    delete (cache evictions) keep a :class:`~repro.bloom.counting.
    CountingBloomFilter` locally and export this plain form to
    neighbors.

    The vector is one Python int, bit ``p`` of the integer being bit
    position ``p`` of the filter; :meth:`to_bytes` serialises it
    little-endian, which is byte-for-byte the layout of the original
    bytearray implementation (bit ``p`` lives in byte ``p >> 3`` at
    in-byte offset ``p & 7``).
    """

    __slots__ = ("_bits", "_hashes", "_value", "_inserted")

    def __init__(self, bits: int, hashes: int) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        if hashes <= 0:
            raise ValueError(f"hashes must be positive, got {hashes}")
        self._bits = bits
        self._hashes = hashes
        self._value = 0
        self._inserted = 0

    # -- core operations ----------------------------------------------------

    def add(self, element: str) -> None:
        """Insert ``element``."""
        self._value |= element_mask(element, self._bits, self._hashes)
        self._inserted += 1

    def add_all(self, elements: Iterable[str]) -> None:
        """Insert every element of ``elements``."""
        for element in elements:
            self.add(element)

    def __contains__(self, element: str) -> bool:
        mask = element_mask(element, self._bits, self._hashes)
        return self._value & mask == mask

    def contains_all(self, elements: Iterable[str]) -> bool:
        """Whether every element tests positive (the §4.2 query match rule)."""
        return all(element in self for element in elements)

    def clear(self) -> None:
        """Reset to the empty filter."""
        self._value = 0
        self._inserted = 0

    # -- combination -----------------------------------------------------

    def union_with(self, other: BloomFilter) -> None:
        """In-place union; both filters must share (bits, hashes)."""
        self._check_compatible(other)
        self._value |= other.bit_int()
        self._inserted += other._inserted

    def _check_compatible(self, other: BloomFilter) -> None:
        if self._bits != other._bits or self._hashes != other._hashes:
            raise ValueError(
                f"incompatible filters: ({self._bits}, {self._hashes}) vs "
                f"({other._bits}, {other._hashes})"
            )

    # -- views ----------------------------------------------------------------

    @property
    def bits(self) -> int:
        """Filter size m in bits."""
        return self._bits

    @property
    def hashes(self) -> int:
        """Number of hash functions k."""
        return self._hashes

    @property
    def approximate_insertions(self) -> int:
        """Insertions performed (an upper bound on distinct elements)."""
        return self._inserted

    def set_bit_count(self) -> int:
        """Number of 1 bits in the vector."""
        return self._value.bit_count()

    def fill_fraction(self) -> float:
        """Fraction of bits set."""
        return self.set_bit_count() / self._bits

    def set_positions(self) -> list[int]:
        """Sorted positions of every set bit."""
        out: list[int] = []
        v = self._value
        while v:
            low = v & -v
            out.append(low.bit_length() - 1)
            v ^= low
        return out

    def get_bit(self, pos: int) -> bool:
        """Whether bit ``pos`` is set."""
        if not (0 <= pos < self._bits):
            raise IndexError(f"bit position {pos} out of range [0, {self._bits})")
        return bool((self._value >> pos) & 1)

    def set_bit(self, pos: int, value: bool) -> None:
        """Force bit ``pos`` to ``value`` (used when applying deltas)."""
        if not (0 <= pos < self._bits):
            raise IndexError(f"bit position {pos} out of range [0, {self._bits})")
        if value:
            self._value |= 1 << pos
        else:
            self._value &= ~(1 << pos)

    def bit_int(self) -> int:
        """The bit vector as one int (bit ``p`` = filter position ``p``)."""
        return self._value

    def to_bytes(self) -> bytes:
        """The raw bit vector (length ``ceil(bits / 8)``)."""
        return self._value.to_bytes((self._bits + 7) // 8, "little")

    @classmethod
    def from_bytes(cls, data: bytes, bits: int, hashes: int) -> BloomFilter:
        """Rebuild a filter from :meth:`to_bytes` output."""
        bf = cls(bits, hashes)
        if len(data) != (bits + 7) // 8:
            raise ValueError(
                f"expected {(bits + 7) // 8} bytes for a {bits}-bit filter, "
                f"got {len(data)}"
            )
        bf._value = int.from_bytes(data, "little")
        return bf

    @classmethod
    def from_bit_int(cls, value: int, bits: int, hashes: int) -> BloomFilter:
        """Build a filter whose vector is ``value`` (one int, bit p = pos p).

        The O(words) export path used by the counting filter; also
        implemented by :class:`ByteBloomFilter`, so callers can stay
        agnostic of the backend class.
        """
        bf = cls(bits, hashes)
        bf._value = value
        return bf

    def copy(self) -> BloomFilter:
        """An independent copy of this filter."""
        clone = BloomFilter(self._bits, self._hashes)
        clone._value = self._value
        clone._inserted = self._inserted
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self._bits == other._bits
            and self._hashes == other._hashes
            and self._value == other._value
        )

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self._bits}, hashes={self._hashes}, "
            f"set={self.set_bit_count()})"
        )


class ByteBloomFilter:
    """The original bytearray-backed filter, retained as a reference.

    Same API and same serialised layout as :class:`BloomFilter`; used by
    the substrate-equivalence suite to prove the int-backed vector
    changes nothing observable.  Not used on any production path.
    """

    __slots__ = ("_bits", "_hashes", "_vector", "_inserted")

    def __init__(self, bits: int, hashes: int) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        if hashes <= 0:
            raise ValueError(f"hashes must be positive, got {hashes}")
        self._bits = bits
        self._hashes = hashes
        self._vector = bytearray((bits + 7) // 8)
        self._inserted = 0

    def add(self, element: str) -> None:
        for pos in element_positions(element, self._bits, self._hashes):
            self._vector[pos >> 3] |= 1 << (pos & 7)
        self._inserted += 1

    def add_all(self, elements: Iterable[str]) -> None:
        for element in elements:
            self.add(element)

    def __contains__(self, element: str) -> bool:
        return all(
            self._vector[pos >> 3] & (1 << (pos & 7))
            for pos in element_positions(element, self._bits, self._hashes)
        )

    def contains_all(self, elements: Iterable[str]) -> bool:
        return all(element in self for element in elements)

    def clear(self) -> None:
        for i in range(len(self._vector)):
            self._vector[i] = 0
        self._inserted = 0

    def union_with(self, other: ByteBloomFilter) -> None:
        if self._bits != other._bits or self._hashes != other._hashes:
            raise ValueError(
                f"incompatible filters: ({self._bits}, {self._hashes}) vs "
                f"({other._bits}, {other._hashes})"
            )
        for i, byte in enumerate(other._vector):
            self._vector[i] |= byte
        self._inserted += other._inserted

    @property
    def bits(self) -> int:
        return self._bits

    @property
    def hashes(self) -> int:
        return self._hashes

    @property
    def approximate_insertions(self) -> int:
        return self._inserted

    def set_bit_count(self) -> int:
        return sum(byte.bit_count() for byte in self._vector)

    def fill_fraction(self) -> float:
        return self.set_bit_count() / self._bits

    def set_positions(self) -> list[int]:
        out: list[int] = []
        for pos in range(self._bits):
            if self._vector[pos >> 3] & (1 << (pos & 7)):
                out.append(pos)
        return out

    def get_bit(self, pos: int) -> bool:
        if not (0 <= pos < self._bits):
            raise IndexError(f"bit position {pos} out of range [0, {self._bits})")
        return bool(self._vector[pos >> 3] & (1 << (pos & 7)))

    def set_bit(self, pos: int, value: bool) -> None:
        if not (0 <= pos < self._bits):
            raise IndexError(f"bit position {pos} out of range [0, {self._bits})")
        if value:
            self._vector[pos >> 3] |= 1 << (pos & 7)
        else:
            self._vector[pos >> 3] &= ~(1 << (pos & 7))

    def bit_int(self) -> int:
        return int.from_bytes(bytes(self._vector), "little")

    def to_bytes(self) -> bytes:
        return bytes(self._vector)

    @classmethod
    def from_bytes(cls, data: bytes, bits: int, hashes: int) -> ByteBloomFilter:
        bf = cls(bits, hashes)
        if len(data) != len(bf._vector):
            raise ValueError(
                f"expected {len(bf._vector)} bytes for a {bits}-bit filter, "
                f"got {len(data)}"
            )
        bf._vector = bytearray(data)
        return bf

    @classmethod
    def from_bit_int(cls, value: int, bits: int, hashes: int) -> ByteBloomFilter:
        bf = cls(bits, hashes)
        bf._vector = bytearray(value.to_bytes((bits + 7) // 8, "little"))
        return bf

    def copy(self) -> ByteBloomFilter:
        clone = ByteBloomFilter(self._bits, self._hashes)
        clone._vector = bytearray(self._vector)
        clone._inserted = self._inserted
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ByteBloomFilter):
            return NotImplemented
        return (
            self._bits == other._bits
            and self._hashes == other._hashes
            and self._vector == other._vector
        )

    def __repr__(self) -> str:
        return (
            f"ByteBloomFilter(bits={self._bits}, hashes={self._hashes}, "
            f"set={self.set_bit_count()})"
        )
