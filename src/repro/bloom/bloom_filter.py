"""A plain bit-vector Bloom filter.

This is the structure exchanged between Locaware neighbors (§4.2):
peer ``n`` summarises the keywords of every filename cached in its
response index as ``BF_n`` and ships it to neighbors, who route queries
by membership tests against the stored copies.

Hashing uses the Kirsch–Mitzenmacher double-hashing scheme: two 64-bit
values are drawn from a single BLAKE2b digest of the element, and the
``i``-th probe position is ``(h1 + i·h2) mod m``.  BLAKE2b keeps
membership deterministic across processes and Python versions (the
built-in ``hash()`` is salted per process, which would break
reproducibility of routing decisions).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Tuple

__all__ = ["element_positions", "BloomFilter"]


def element_positions(element: str, bits: int, hashes: int) -> Tuple[int, ...]:
    """The probe positions of ``element`` in an ``(m=bits, k=hashes)`` filter.

    Exposed at module level because the plain and counting filters must
    agree on positions exactly (the counting filter exports a plain
    bit-vector view of itself).
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    if hashes <= 0:
        raise ValueError(f"hashes must be positive, got {hashes}")
    digest = hashlib.blake2b(element.encode("utf-8"), digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:], "big") | 1  # odd => full-period stride
    return tuple((h1 + i * h2) % bits for i in range(hashes))


class BloomFilter:
    """A fixed-size Bloom filter over strings.

    Supports insertion, membership, union, and (de)serialisation of the
    raw bit vector.  Deletion is *not* supported here — peers that must
    delete (cache evictions) keep a :class:`~repro.bloom.counting.
    CountingBloomFilter` locally and export this plain form to
    neighbors.
    """

    __slots__ = ("_bits", "_hashes", "_vector", "_inserted")

    def __init__(self, bits: int, hashes: int) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        if hashes <= 0:
            raise ValueError(f"hashes must be positive, got {hashes}")
        self._bits = bits
        self._hashes = hashes
        self._vector = bytearray((bits + 7) // 8)
        self._inserted = 0

    # -- core operations ----------------------------------------------------

    def add(self, element: str) -> None:
        """Insert ``element``."""
        for pos in element_positions(element, self._bits, self._hashes):
            self._vector[pos >> 3] |= 1 << (pos & 7)
        self._inserted += 1

    def add_all(self, elements: Iterable[str]) -> None:
        """Insert every element of ``elements``."""
        for element in elements:
            self.add(element)

    def __contains__(self, element: str) -> bool:
        return all(
            self._vector[pos >> 3] & (1 << (pos & 7))
            for pos in element_positions(element, self._bits, self._hashes)
        )

    def contains_all(self, elements: Iterable[str]) -> bool:
        """Whether every element tests positive (the §4.2 query match rule)."""
        return all(element in self for element in elements)

    def clear(self) -> None:
        """Reset to the empty filter."""
        for i in range(len(self._vector)):
            self._vector[i] = 0
        self._inserted = 0

    # -- combination -----------------------------------------------------

    def union_with(self, other: "BloomFilter") -> None:
        """In-place union; both filters must share (bits, hashes)."""
        self._check_compatible(other)
        for i, byte in enumerate(other._vector):
            self._vector[i] |= byte
        self._inserted += other._inserted

    def _check_compatible(self, other: "BloomFilter") -> None:
        if self._bits != other._bits or self._hashes != other._hashes:
            raise ValueError(
                f"incompatible filters: ({self._bits}, {self._hashes}) vs "
                f"({other._bits}, {other._hashes})"
            )

    # -- views ----------------------------------------------------------------

    @property
    def bits(self) -> int:
        """Filter size m in bits."""
        return self._bits

    @property
    def hashes(self) -> int:
        """Number of hash functions k."""
        return self._hashes

    @property
    def approximate_insertions(self) -> int:
        """Insertions performed (an upper bound on distinct elements)."""
        return self._inserted

    def set_bit_count(self) -> int:
        """Number of 1 bits in the vector."""
        return sum(byte.bit_count() for byte in self._vector)

    def fill_fraction(self) -> float:
        """Fraction of bits set."""
        return self.set_bit_count() / self._bits

    def set_positions(self) -> List[int]:
        """Sorted positions of every set bit."""
        out: List[int] = []
        for pos in range(self._bits):
            if self._vector[pos >> 3] & (1 << (pos & 7)):
                out.append(pos)
        return out

    def get_bit(self, pos: int) -> bool:
        """Whether bit ``pos`` is set."""
        if not (0 <= pos < self._bits):
            raise IndexError(f"bit position {pos} out of range [0, {self._bits})")
        return bool(self._vector[pos >> 3] & (1 << (pos & 7)))

    def set_bit(self, pos: int, value: bool) -> None:
        """Force bit ``pos`` to ``value`` (used when applying deltas)."""
        if not (0 <= pos < self._bits):
            raise IndexError(f"bit position {pos} out of range [0, {self._bits})")
        if value:
            self._vector[pos >> 3] |= 1 << (pos & 7)
        else:
            self._vector[pos >> 3] &= ~(1 << (pos & 7))

    def to_bytes(self) -> bytes:
        """The raw bit vector (length ``ceil(bits / 8)``)."""
        return bytes(self._vector)

    @classmethod
    def from_bytes(cls, data: bytes, bits: int, hashes: int) -> "BloomFilter":
        """Rebuild a filter from :meth:`to_bytes` output."""
        bf = cls(bits, hashes)
        if len(data) != len(bf._vector):
            raise ValueError(
                f"expected {len(bf._vector)} bytes for a {bits}-bit filter, got {len(data)}"
            )
        bf._vector = bytearray(data)
        return bf

    def copy(self) -> "BloomFilter":
        """An independent copy of this filter."""
        clone = BloomFilter(self._bits, self._hashes)
        clone._vector = bytearray(self._vector)
        clone._inserted = self._inserted
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self._bits == other._bits
            and self._hashes == other._hashes
            and self._vector == other._vector
        )

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self._bits}, hashes={self._hashes}, "
            f"set={self.set_bit_count()})"
        )
