#!/usr/bin/env python3
"""Record a query trace, save it, and replay it against two protocols.

The paper's comparison is only meaningful because every protocol sees
the *same* queries.  This example makes that explicit: one recorded
trace (our stand-in for the Gnutella traces of refs [11, 15]) drives
both Dicas and Locaware, and the run is bit-for-bit reproducible.

Run:  python examples/trace_replay.py
"""

import io
import time

from repro import DicasProtocol, LocawareProtocol, P2PNetwork, SimulationConfig
from repro.analysis import format_table, summarize_outcomes
from repro.workload import QueryWorkload, TraceReplayer, parse_trace, serialize_trace


def record_trace(config, count):
    """Generate a workload once and capture it as a trace."""
    network = P2PNetwork.build(config)
    workload = QueryWorkload(network, lambda *a: None, max_queries=count)
    workload.start()
    network.sim.run()
    buffer = io.StringIO()
    serialize_trace(workload.history, buffer)
    return buffer.getvalue()


def replay(config, trace_text, protocol_cls):
    """Drive one protocol with the recorded trace."""
    events = parse_trace(io.StringIO(trace_text))
    network = P2PNetwork.build(config)
    protocol = protocol_cls(network)
    protocol.start()
    replayer = TraceReplayer(network, protocol.issue_query, events)
    replayer.start()
    horizon = events[-1].time + config.query_timeout_s + 1.0
    while network.sim.now < horizon:
        network.sim.run(until=min(horizon, network.sim.now + 500.0))
    stop = getattr(protocol, "stop", None)
    if callable(stop):
        stop()
    return replayer, protocol


def main() -> None:
    config = SimulationConfig.small(seed=77).replace(query_rate_per_peer=0.02)

    print("recording a 300-query trace...")
    trace_text = record_trace(config, 300)
    lines = trace_text.strip().splitlines()
    print(f"trace: {len(lines)} events, e.g.\n  " + "\n  ".join(lines[:3]) + "\n")

    rows = []
    for cls in (DicasProtocol, LocawareProtocol):
        started = time.time()
        replayer, protocol = replay(config, trace_text, cls)
        summary = summarize_outcomes(protocol.outcomes)
        rows.append([
            cls.name,
            replayer.replayed,
            summary.queries,
            summary.success_rate,
            summary.mean_messages,
        ])
        print(f"  replayed against {cls.name} in {time.time() - started:.1f}s")

    print()
    print(format_table(
        ["protocol", "replayed", "network queries", "success", "msgs/query"],
        rows,
        title="Identical trace, two protocols",
    ))

    # Determinism check: replaying the same trace twice gives identical
    # outcomes.
    _, first = replay(config, trace_text, LocawareProtocol)
    _, second = replay(config, trace_text, LocawareProtocol)
    identical = [o.success for o in first.outcomes] == [
        o.success for o in second.outcomes
    ]
    print(f"\nreplay determinism: {'OK' if identical else 'BROKEN'}")


if __name__ == "__main__":
    main()
