#!/usr/bin/env python3
"""Dissect the location-awareness machinery (§4.1.1 + §5.1).

Answers three questions about the landmark/locId scheme on a concrete
underlay, without running any protocol:

1. How do peers distribute over locIds, and what happens with more
   landmarks?  (the paper's 4-vs-5-landmark argument)
2. How much closer are same-locId peers than random pairs?
3. How much download distance does each provider-selection policy save
   (random / first / locId+RTT-probe), holding providers fixed?

Run:  python examples/locality_analysis.py
"""

import math
import random
import statistics

from repro.analysis import format_table
from repro.net import Underlay
from repro.sim import RandomStreams


def locid_distribution(num_landmarks: int, num_peers: int = 1000, seed: int = 7):
    streams = RandomStreams(seed)
    underlay = Underlay.build(
        num_peers, streams.stream("underlay"), num_landmarks=num_landmarks
    )
    histogram = underlay.locid_histogram()
    return underlay, histogram


def intra_vs_inter_rtt(underlay, rng):
    by_locid = {}
    for pid in range(underlay.num_peers):
        by_locid.setdefault(underlay.locid_of(pid), []).append(pid)
    intra = []
    for members in by_locid.values():
        for _ in range(min(len(members), 20)):
            a, b = rng.sample(members, 2) if len(members) >= 2 else (None, None)
            if a is not None:
                intra.append(underlay.rtt_ms(a, b))
    inter = []
    for _ in range(2000):
        a, b = rng.randrange(underlay.num_peers), rng.randrange(underlay.num_peers)
        if a != b:
            inter.append(underlay.rtt_ms(a, b))
    return statistics.mean(intra), statistics.mean(inter)


def selection_policy_gains(underlay, rng, trials=2000, providers_per_file=5):
    """Distance achieved by three provider-selection policies."""
    random_policy, first_policy, locaware_policy = [], [], []
    n = underlay.num_peers
    for _ in range(trials):
        requestor = rng.randrange(n)
        providers = rng.sample([p for p in range(n) if p != requestor],
                               providers_per_file)
        random_policy.append(underlay.rtt_ms(requestor, rng.choice(providers)))
        first_policy.append(underlay.rtt_ms(requestor, providers[0]))
        same_loc = [p for p in providers
                    if underlay.locid_of(p) == underlay.locid_of(requestor)]
        if same_loc:
            locaware_policy.append(underlay.rtt_ms(requestor, same_loc[0]))
        else:  # §5.1 fallback: probe all advertised providers
            locaware_policy.append(
                min(underlay.rtt_ms(requestor, p) for p in providers)
            )
    return (statistics.mean(random_policy), statistics.mean(first_policy),
            statistics.mean(locaware_policy))


def main() -> None:
    rng = random.Random(99)

    print("1) locId granularity vs landmark count (1000 peers)\n")
    rows = []
    for count in (2, 3, 4, 5):
        underlay, histogram = locid_distribution(count)
        occupied = len(histogram)
        largest = max(histogram.values())
        rows.append([
            count,
            math.factorial(count),
            occupied,
            round(underlay.mean_peers_per_locid(), 1),
            largest,
        ])
    print(format_table(
        ["landmarks", "possible locIds", "occupied", "mean peers/locId", "largest"],
        rows,
    ))
    print("\n  -> §5.1: with 5 landmarks localities get so thin that finding a\n"
          "     same-locId provider becomes unlikely; 4 is the sweet spot.\n")

    print("2) physical coherence of locIds (4 landmarks)\n")
    underlay, _ = locid_distribution(4)
    intra, inter = intra_vs_inter_rtt(underlay, rng)
    print(f"   mean RTT within a locId:   {intra:7.1f} ms")
    print(f"   mean RTT of random pairs:  {inter:7.1f} ms")
    print(f"   locality gain:             {(1 - intra / inter):7.1%}\n")

    print("3) provider-selection policies (5 providers per file)\n")
    rnd, first, loc = selection_policy_gains(underlay, rng)
    print(format_table(
        ["policy", "mean download distance (ms)"],
        [
            ["random provider", rnd],
            ["first response", first],
            ["locId match + RTT probe (Locaware)", loc],
        ],
    ))
    print(f"\n   Locaware's policy saves {(1 - loc / rnd):.1%} over random selection\n"
          "   exactly the §4.1 effect the response index makes possible.")


if __name__ == "__main__":
    main()
