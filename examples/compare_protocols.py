#!/usr/bin/env python3
"""Reproduce the paper's evaluation: Figures 2, 3, and 4.

Runs Flooding, Dicas, Dicas-Keys, and Locaware on the identical
workload and prints the three figure series plus the §5.2 headline
claim checks.

Run (paper scale, ~1 minute):
    python examples/compare_protocols.py

Quick look (small system, seconds):
    python examples/compare_protocols.py --peers 100 --queries 300

Full §5.1 scale with a custom horizon:
    python examples/compare_protocols.py --queries 2000 --bucket 250
"""

import argparse
import sys
import time

from repro.analysis import check_paper_claims, format_table
from repro.experiments import (
    fig2_download_distance,
    fig3_search_traffic,
    fig4_success_rate,
    paper_config,
    run_comparison,
)
from repro.sim import SimulationConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peers", type=int, default=1000, help="overlay size")
    parser.add_argument("--queries", type=int, default=1500, help="query horizon")
    parser.add_argument("--bucket", type=int, default=250, help="figure bucket width")
    parser.add_argument("--seed", type=int, default=20090322, help="master seed")
    return parser.parse_args()


def scaled_config(peers: int, seed: int) -> SimulationConfig:
    """The §5.1 configuration, optionally shrunk proportionally."""
    base = paper_config(seed=seed)
    if peers == base.num_peers:
        return base
    scale = peers / base.num_peers
    return base.replace(
        num_peers=peers,
        num_files=max(10, int(base.num_files * scale)),
        keyword_pool_size=max(30, int(base.keyword_pool_size * scale)),
        # Keep the system-wide query rate comparable so virtual time
        # stays in the same ballpark.
        query_rate_per_peer=base.query_rate_per_peer / scale,
    )


def main() -> None:
    args = parse_args()
    config = scaled_config(args.peers, args.seed)
    started = time.time()
    result = run_comparison(
        config,
        max_queries=args.queries,
        bucket_width=args.bucket,
        progress=lambda message: print(f"  [{time.time() - started:6.1f}s] {message}",
                                       flush=True),
    )
    print(f"\ncompleted in {time.time() - started:.1f}s wall "
          f"({config.num_peers} peers, {args.queries} queries/protocol)\n")

    for module in (fig2_download_distance, fig3_search_traffic, fig4_success_rate):
        print(module.render(result))
        print()

    rows = [
        [
            name,
            run.summary.success_rate,
            run.summary.mean_messages,
            run.summary.mean_download_distance_ms,
            run.locally_satisfied,
        ]
        for name, run in result.runs.items()
    ]
    print(format_table(
        ["protocol", "success", "msgs/query", "distance_ms", "local hits"],
        rows,
        title="Whole-run summary",
    ))
    print()

    checks = check_paper_claims(result.summaries(), result.series())
    failed = 0
    for check in checks:
        status = "PASS" if check.holds else "FAIL"
        failed += 0 if check.holds else 1
        print(f"[{status}] {check.claim}")
        print(f"       {check.detail}")
    print(f"\n{len(checks) - failed}/{len(checks)} paper claims hold")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
