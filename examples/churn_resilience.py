#!/usr/bin/env python3
"""Index staleness under churn: Locaware vs Dicas (§3.1, §4.1.2).

"Given the high dynamicity of peers, cached objects should be kept for
a small amount of time to avoid sending stale responses" — the paper's
motivation for recency-based replacement and multi-provider entries.

Part 1 shows the *mechanism* deterministically: a query answered from a
cached index whose first provider has just left the network.  Dicas'
single-pointer index dooms the query; Locaware's multi-provider entry
falls back to a live provider.

Part 2 shows the *statistics*: with churn enabled, end-to-end success
degrades more for Dicas than for Locaware in a regime where searches
rely on cached indexes (rare replicas: 600 files over 200 peers).

Run:  python examples/churn_resilience.py
"""

import time

from repro import DicasProtocol, LocawareProtocol, P2PNetwork, SimulationConfig
from repro.analysis import format_table
from repro.experiments import run_protocol
from repro.overlay import ProviderEntry


def mechanism_demo() -> None:
    """One query, one stale pointer, two protocols."""
    print("Part 1 — the mechanism (single query, stale cached provider)\n")
    results = []
    for cls in (DicasProtocol, LocawareProtocol):
        config = SimulationConfig.small(seed=5)
        network = P2PNetwork.build(config)
        protocol = cls(network)
        for peer in network.peers:
            peer.store.clear()
        file_id = 7
        filename = network.catalog.filename(file_id)
        keywords = tuple(sorted(network.catalog.keywords(file_id)))
        departed, alive = 30, 40
        network.peer(alive).store.add(file_id)

        # Both protocols cached `departed` as the provider before it left;
        # Locaware's entry also remembers `alive` (an earlier requestor).
        if cls is DicasProtocol:
            protocol.index_of(network.peer(0)).put(
                filename, ProviderEntry(departed, None)
            )
        else:
            protocol.index_of(network.peer(0)).put(
                filename,
                [
                    ProviderEntry(alive, network.peer(alive).locid),
                    ProviderEntry(departed, network.peer(departed).locid),
                ],
            )
        network.peer(departed).alive = False  # churn strikes

        protocol.issue_query(0, file_id, keywords)
        network.sim.run(until=network.sim.now + 60.0)
        outcome = protocol.outcomes[0]
        results.append([cls.name, "yes" if outcome.success else "no",
                        outcome.provider if outcome.provider is not None else "-"])
    print(format_table(["protocol", "query satisfied", "provider used"], results))
    print()


def statistics_demo() -> None:
    """End-to-end success under increasing churn."""
    print("Part 2 — end-to-end statistics (200 peers, 600 rare files)\n")
    base = SimulationConfig.small(seed=31).replace(
        num_peers=200,
        num_files=600,
        keyword_pool_size=2700,
        query_rate_per_peer=0.02,
        index_capacity=30,
    )
    scenarios = [
        ("no churn", base.replace(churn_enabled=False)),
        ("moderate (~3 min sessions)", base.replace(
            churn_enabled=True, mean_session_s=200.0, mean_downtime_s=50.0)),
    ]
    rows = []
    for label, config in scenarios:
        started = time.time()
        dicas = run_protocol(config, "dicas", max_queries=600, bucket_width=150)
        locaware = run_protocol(config, "locaware", max_queries=600, bucket_width=150)
        rows.append([
            label,
            dicas.summary.success_rate,
            locaware.summary.success_rate,
            locaware.summary.success_rate - dicas.summary.success_rate,
        ])
        print(f"  ran '{label}' in {time.time() - started:.1f}s", flush=True)
    print()
    print(format_table(
        ["churn level", "dicas success", "locaware success", "locaware edge"],
        rows,
        title="Success rate under churn (600 queries/protocol)",
    ))
    print(
        "\nChurn widens the gap: Locaware's multi-provider, recency-refreshed\n"
        "entries offer live alternatives when a cached pointer goes stale,\n"
        "while a Dicas index dies with its single provider."
    )


def main() -> None:
    mechanism_demo()
    statistics_demo()


if __name__ == "__main__":
    main()
