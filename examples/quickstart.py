#!/usr/bin/env python3
"""Quickstart: build a small P2P file-sharing system and run Locaware.

Demonstrates the core public API in ~40 lines:

1. configure a system (``SimulationConfig``);
2. assemble it (``P2PNetwork.build``);
3. attach the Locaware protocol and start its background processes;
4. drive a Zipf keyword-query workload through it;
5. read the three paper metrics back.

Run:  python examples/quickstart.py
"""

from repro import LocawareProtocol, P2PNetwork, SimulationConfig
from repro.analysis import summarize_outcomes
from repro.workload import QueryWorkload


def main() -> None:
    # A miniature version of the paper's setup (§5.1): the full-scale
    # configuration is SimulationConfig.paper_defaults().
    config = SimulationConfig.small(seed=42)
    print(f"building {config.num_peers} peers, {config.num_files} files...")
    network = P2PNetwork.build(config)

    protocol = LocawareProtocol(network)
    protocol.start()  # arms the periodic Bloom-filter pushes (§4.2)

    workload = QueryWorkload(network, protocol.issue_query, max_queries=300)
    workload.start()

    # Advance virtual time until the workload is generated and every
    # query has settled (Locaware's periodic pushes keep the event
    # queue alive, so run in bounded slices).
    while workload.generated < 300 or protocol.pending_queries > 0:
        network.sim.run(until=network.sim.now + 500.0)
    protocol.stop()

    summary = summarize_outcomes(protocol.outcomes)
    print(f"\nvirtual time:        {network.sim.now:,.0f} s")
    print(f"queries issued:      {summary.queries}")
    print(f"success rate:        {summary.success_rate:.1%}")
    print(f"messages per query:  {summary.mean_messages:.1f}")
    print(f"download distance:   {summary.mean_download_distance_ms:.0f} ms RTT")
    print(f"locally satisfied:   {protocol.local_satisfactions} (never hit the network)")

    # Peek inside one peer's location-aware response index (§4.1).
    populated = [
        p for p in network.peers if protocol.index_of(p).size > 0
    ]
    if populated:
        peer = populated[0]
        index = protocol.index_of(peer)
        print(f"\npeer {peer.peer_id} (locId {peer.locid}) caches "
              f"{index.size} filename(s):")
        for filename in index.filenames()[-3:]:
            providers = index.providers_of(filename)
            entries = ", ".join(f"(peer {p.peer_id}, locId {p.locid})" for p in providers)
            print(f"  {filename}: {entries}")


if __name__ == "__main__":
    main()
